"""A stabilization-style solver for word equations with regular constraints.

Z3-Noodler handles ``E ∧ R`` by the stabilization procedure of [24]: word
equations are eliminated by *noodlification* — aligning the automaton of one
side with the concatenation of automata of the other side and splitting it at
the variable boundaries — producing a disjunction of refined regular
constraints (a monadic decomposition) plus a substitution map.

This module implements the fragment of that procedure that the position
decision procedure (and our benchmark workloads) need:

* trivial equations (``x = y``, ``x = ε``, ground equations),
* *assignment-shaped* equations ``x = y₁ · … · y_k`` where ``x`` does not
  occur on the right-hand side (the common shape produced by symbolic
  execution), solved exactly by noodlification,
* systems of such equations, processed to a fixpoint with a branch budget.

Anything outside this fragment makes the solver report "don't know", which
the string solver surfaces as ``UNKNOWN`` — mirroring how Z3-Noodler runs
out of resources on non-chain-free inputs (§8.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata import intersection, remove_epsilon
from ..automata.nfa import EPSILON, Nfa

VarEquation = Tuple[Tuple[str, ...], Tuple[str, ...]]


class EquationTooHard(Exception):
    """Raised when an equation falls outside the supported fragment."""


@dataclass
class Branch:
    """One disjunct of the monadic decomposition.

    ``automata`` constrains the remaining variables; ``substitution`` maps
    every eliminated variable to the concatenation of remaining variables it
    was replaced by (used to reconstruct its value from a model).
    """

    automata: Dict[str, Nfa]
    substitution: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def expand(self, variable: str, seen: Optional[Set[str]] = None) -> Tuple[str, ...]:
        """Fully expand a variable through the substitution map."""
        seen = seen or set()
        if variable in seen:
            raise ValueError(f"cyclic substitution through {variable}")
        if variable not in self.substitution:
            return (variable,)
        result: List[str] = []
        for part in self.substitution[variable]:
            result.extend(self.expand(part, seen | {variable}))
        return tuple(result)

    def expand_term(self, term: Sequence[str]) -> Tuple[str, ...]:
        result: List[str] = []
        for variable in term:
            result.extend(self.expand(variable))
        return tuple(result)


@dataclass
class DecompositionResult:
    """Outcome of the equation-elimination phase."""

    branches: List[Branch]
    complete: bool  # False when the budget was exhausted or the fragment was left


# ----------------------------------------------------------------------
# Noodlification of x = y1 ... yk
# ----------------------------------------------------------------------
def noodlify_assignment(
    target: Nfa, parts: Sequence[Tuple[str, Nfa]], max_noodles: int = 256
) -> List[Dict[str, Nfa]]:
    """Solve ``x = y1 … yk`` by splitting: refine each ``y_i`` against ``x``.

    Returns a list of "noodles": each maps the part variables to refined
    automata such that (i) each refined language is included in the original
    language of the part, and (ii) any combination of words from the refined
    languages concatenates to a word of ``L(x)``; together the noodles cover
    every solution of the equation.  Raises :class:`EquationTooHard` when the
    split budget is exceeded.
    """
    names = [name for name, _ in parts]
    if len(set(names)) != len(names):
        # A variable repeated inside the right-hand side needs the full
        # stabilization loop of [24]; we stay in the exactly-solved fragment.
        raise EquationTooHard("repeated variable on the right-hand side")
    target = remove_epsilon(target) if target.has_epsilon() else target
    part_automata = [remove_epsilon(nfa) if nfa.has_epsilon() else nfa for _, nfa in parts]

    if not parts:
        # x = ε: the equation is satisfiable iff ε ∈ L(x).
        return [{}] if target.accepts("") else []

    # The split points are assignments of target states to the k-1 internal
    # boundaries plus an initial and a final state of the target.
    target_states = sorted(target.states)
    initials = sorted(target.initial)
    finals = sorted(target.final)
    boundary_choices = [initials] + [target_states] * (len(parts) - 1) + [finals]
    total = 1
    for choice in boundary_choices:
        total *= max(len(choice), 1)
    if total > max_noodles:
        raise EquationTooHard(f"too many noodles ({total} > {max_noodles})")

    noodles: List[Dict[str, Nfa]] = []
    for assignment in product(*boundary_choices):
        refinement: Dict[str, Nfa] = {}
        feasible = True
        for index, (name, part_nfa) in enumerate(zip(names, part_automata)):
            segment = target.copy()
            segment.initial = {assignment[index]}
            segment.final = {assignment[index + 1]}
            refined = intersection(part_nfa, segment).trim()
            if not refined.states:
                if assignment[index] == assignment[index + 1] and part_nfa.accepts(""):
                    refined = Nfa.epsilon_language()
                else:
                    feasible = False
                    break
            refinement[name] = refined
        if feasible:
            noodles.append(refinement)
    return noodles


# ----------------------------------------------------------------------
# The decomposition driver
# ----------------------------------------------------------------------
def _orient(equation: VarEquation) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Orient an equation as ``x = t`` with ``x`` not occurring in ``t``."""
    lhs, rhs = equation
    if len(lhs) == 1 and lhs[0] not in rhs:
        return lhs[0], rhs
    if len(rhs) == 1 and rhs[0] not in lhs:
        return rhs[0], lhs
    return None


def decompose(
    equations: Sequence[VarEquation],
    automata: Dict[str, Nfa],
    max_branches: int = 128,
    max_noodles: int = 256,
) -> DecompositionResult:
    """Eliminate the given equations, producing a monadic decomposition.

    The result is a list of branches (disjuncts); an empty list with
    ``complete=True`` means the equations (with the regular constraints) are
    unsatisfiable.  ``complete=False`` signals that some equation was outside
    the supported fragment or a budget was exceeded.
    """
    work: List[Tuple[List[VarEquation], Branch]] = [
        (list(equations), Branch(dict(automata)))
    ]
    finished: List[Branch] = []
    complete = True

    while work:
        pending, branch = work.pop()
        if not pending:
            finished.append(branch)
            continue
        equation = pending[0]
        rest = pending[1:]
        lhs = branch.expand_term(equation[0])
        rhs = branch.expand_term(equation[1])

        # Trivial simplifications.
        if lhs == rhs:
            work.append((rest, branch))
            continue
        if len(lhs) == 1 and len(rhs) == 1:
            x, y = lhs[0], rhs[0]
            refined = intersection(branch.automata[x], branch.automata[y]).trim()
            if not refined.states:
                if branch.automata[x].accepts("") and branch.automata[y].accepts(""):
                    refined = Nfa.epsilon_language()
                else:
                    continue  # this branch is unsatisfiable
            new_automata = dict(branch.automata)
            new_automata[x] = refined
            new_automata[y] = refined
            substitution = dict(branch.substitution)
            substitution[x] = (y,)
            work.append((rest, Branch(new_automata, substitution)))
            continue

        oriented = _orient((lhs, rhs))
        if oriented is None:
            complete = False
            continue
        x, parts = oriented
        if not parts:
            # x = ε
            if not branch.automata[x].accepts(""):
                continue
            new_automata = dict(branch.automata)
            new_automata[x] = Nfa.epsilon_language()
            substitution = dict(branch.substitution)
            substitution[x] = ()
            work.append((rest, Branch(new_automata, substitution)))
            continue

        try:
            noodles = noodlify_assignment(
                branch.automata[x], [(name, branch.automata[name]) for name in parts], max_noodles
            )
        except EquationTooHard:
            complete = False
            continue

        if len(finished) + len(work) + len(noodles) > max_branches:
            complete = False
            continue

        for noodle in noodles:
            new_automata = dict(branch.automata)
            for name, refined in noodle.items():
                new_automata[name] = refined
            substitution = dict(branch.substitution)
            substitution[x] = tuple(parts)
            work.append((rest, Branch(new_automata, substitution)))

    return DecompositionResult(branches=finished, complete=complete)
