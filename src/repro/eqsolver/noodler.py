"""A stabilization-style solver for word equations with regular constraints.

Z3-Noodler handles ``E ∧ R`` by the stabilization procedure of [24]: word
equations are eliminated by *noodlification* — aligning the automaton of one
side with the concatenation of automata of the other side and splitting it at
the variable boundaries — producing a disjunction of refined regular
constraints (a monadic decomposition) plus a substitution map.

This module implements the fragment of that procedure that the position
decision procedure (and our benchmark workloads) need:

* trivial equations (``x = y``, ``x = ε``, ground equations),
* *assignment-shaped* equations ``x = y₁ · … · y_k`` where ``x`` does not
  occur on the right-hand side (the common shape produced by symbolic
  execution), solved exactly by noodlification,
* *two-sided* concatenation equations ``x₁ … x_m = y₁ … y_n`` by Levi
  splits: the head variables either coincide or one is a prefix of the
  other (``x₁ = y₁ · f`` with a fresh ``f``), each branch reducing to an
  assignment-shaped equation plus a strictly shorter two-sided remainder.
  Splits are budgeted (repeated variables can make the rewriting grow), so
  the procedure stays terminating — the shape arises from the extended
  string functions, whose reductions put several structural splits on one
  haystack variable (``s = p·r·q ∧ s = a·x·t·y``),
* systems of such equations, processed to a fixpoint with a branch budget.

Anything outside this fragment makes the solver report "don't know", which
the string solver surfaces as ``UNKNOWN`` — mirroring how Z3-Noodler runs
out of resources on non-chain-free inputs (§8.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..automata import intersection, intersection_empty, remove_epsilon
from ..automata.minimization import minimize
from ..automata.nfa import EPSILON, Nfa
from ..budget import checkpoint

VarEquation = Tuple[Tuple[str, ...], Tuple[str, ...]]


class EquationTooHard(Exception):
    """Raised when an equation falls outside the supported fragment."""


@dataclass
class Branch:
    """One disjunct of the monadic decomposition.

    ``automata`` constrains the remaining variables; ``substitution`` maps
    every eliminated variable to the concatenation of remaining variables it
    was replaced by (used to reconstruct its value from a model).
    """

    automata: Dict[str, Nfa]
    substitution: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def expand(self, variable: str, seen: Optional[Set[str]] = None) -> Tuple[str, ...]:
        """Fully expand a variable through the substitution map."""
        seen = seen or set()
        if variable in seen:
            raise ValueError(f"cyclic substitution through {variable}")
        if variable not in self.substitution:
            return (variable,)
        result: List[str] = []
        for part in self.substitution[variable]:
            result.extend(self.expand(part, seen | {variable}))
        return tuple(result)

    def expand_term(self, term: Sequence[str]) -> Tuple[str, ...]:
        result: List[str] = []
        for variable in term:
            result.extend(self.expand(variable))
        return tuple(result)


@dataclass
class DecompositionResult:
    """Outcome of the equation-elimination phase."""

    branches: List[Branch]
    complete: bool  # False when the budget was exhausted or the fragment was left


# ----------------------------------------------------------------------
# Noodlification of x = y1 ... yk
# ----------------------------------------------------------------------
def noodlify_assignment(
    target: Nfa, parts: Sequence[Tuple[str, Nfa]], max_noodles: int = 256
) -> List[Dict[str, Nfa]]:
    """Solve ``x = y1 … yk`` by splitting: refine each ``y_i`` against ``x``.

    Returns a list of "noodles": each maps the part variables to refined
    automata such that (i) each refined language is included in the original
    language of the part, and (ii) any combination of words from the refined
    languages concatenates to a word of ``L(x)``; together the noodles cover
    every solution of the equation.  Raises :class:`EquationTooHard` when the
    split budget is exceeded.
    """
    names = [name for name, _ in parts]
    if len(set(names)) != len(names):
        # A variable repeated inside the right-hand side needs the full
        # stabilization loop of [24]; we stay in the exactly-solved fragment.
        raise EquationTooHard("repeated variable on the right-hand side")
    target = remove_epsilon(target) if target.has_epsilon() else target
    part_automata = [remove_epsilon(nfa) if nfa.has_epsilon() else nfa for _, nfa in parts]

    if not parts:
        # x = ε: the equation is satisfiable iff ε ∈ L(x).
        return [{}] if target.accepts("") else []

    # The split points are assignments of target states to the k-1 internal
    # boundaries plus an initial and a final state of the target.
    def boundary_count(nfa: Nfa) -> int:
        total = 1
        for choice in [nfa.initial] + [nfa.states] * (len(parts) - 1) + [nfa.final]:
            total *= max(len(choice), 1)
        return total

    if boundary_count(target) > max_noodles:
        # The split count is exponential in the boundary choices; a
        # minimized target often collapses them (a Thompson-compiled
        # ``(a|b)+`` has 6 states where 2 suffice).  The subset
        # construction is capped — an adversarial target whose DFA
        # explodes must keep the instant too-hard bail-out below instead
        # of stalling past the solver's deadline.
        reduced = minimize(target, max_states=4 * len(target.states) + 16)
        if boundary_count(reduced) < boundary_count(target):
            target = reduced
    total = boundary_count(target)
    if total > max_noodles:
        raise EquationTooHard(f"too many noodles ({total} > {max_noodles})")
    target_states = sorted(target.states)
    initials = sorted(target.initial)
    finals = sorted(target.final)
    boundary_choices = [initials] + [target_states] * (len(parts) - 1) + [finals]
    # Per-boundary segments are dense endpoint views: same rows (and cached
    # closures) as the target, only the initial/final masks differ — no
    # per-assignment copy of the whole target automaton.
    target_dense = target.dense()
    state_bit = {state: 1 << i for state, i in target_dense.index.items()}

    noodles: List[Dict[str, Nfa]] = []
    for assignment in product(*boundary_choices):
        # One budget step per boundary assignment — each costs a product
        # construction per part, so this loop dominates noodlification.
        checkpoint("eqsolver.noodlify")
        refinement: Dict[str, Nfa] = {}
        feasible = True
        for index, (name, part_nfa) in enumerate(zip(names, part_automata)):
            segment = target_dense.with_endpoints(
                state_bit[assignment[index]], state_bit[assignment[index + 1]]
            )
            refined = intersection(part_nfa, segment).trim()
            if not refined.states:
                if assignment[index] == assignment[index + 1] and part_nfa.accepts(""):
                    refined = Nfa.epsilon_language()
                else:
                    feasible = False
                    break
            refinement[name] = refined
        if feasible:
            noodles.append(refinement)
    return noodles


# ----------------------------------------------------------------------
# The decomposition driver
# ----------------------------------------------------------------------
def _orient(equation: VarEquation) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Orient an equation as ``x = t`` with ``x`` not occurring in ``t``."""
    lhs, rhs = equation
    if len(lhs) == 1 and lhs[0] not in rhs:
        return lhs[0], rhs
    if len(rhs) == 1 and rhs[0] not in lhs:
        return rhs[0], lhs
    return None


def _refuted_by_consequences(
    equations: Sequence[VarEquation], automata: Dict[str, Nfa]
) -> bool:
    """Cheap sound refutation: same-variable structural consequences.

    Two equations ``x = T₁`` and ``x = T₂`` imply ``T₁ = T₂``; after
    cancelling the common prefix and suffix *variables*, a remainder of the
    shape ``u = v`` with ``L(u) ∩ L(v) = ∅`` — or ``u = ε`` with
    ``ε ∉ L(u)`` — is unsatisfiable.  This catches the fixed-point patterns
    the extended-function reductions produce (``s = x·"a"·y ∧ s = x·"b"·y``
    from ``str.replace(s, "a", "b") = s``) without exploring the
    exponential alignment space of the splits.
    """
    by_var: Dict[str, List[Tuple[str, ...]]] = {}
    for lhs, rhs in equations:
        if len(lhs) == 1 and lhs[0] not in rhs:
            by_var.setdefault(lhs[0], []).append(rhs)
        if len(rhs) == 1 and rhs[0] not in lhs:
            by_var.setdefault(rhs[0], []).append(lhs)
    for sides in by_var.values():
        for i in range(len(sides)):
            for j in range(i + 1, len(sides)):
                left, right = list(sides[i]), list(sides[j])
                while left and right and left[0] == right[0]:
                    left.pop(0)
                    right.pop(0)
                while left and right and left[-1] == right[-1]:
                    left.pop()
                    right.pop()
                if not left and not right:
                    continue
                if not left or not right:
                    remainder = right or left
                    if any(
                        name in automata and not automata[name].accepts("")
                        for name in remainder
                    ):
                        return True
                    continue
                if len(left) == 1 and len(right) == 1:
                    one, other = automata.get(left[0]), automata.get(right[0])
                    if one is None or other is None:
                        continue
                    # Lazy consequence check: emptiness of the product is
                    # decided on the fly (first accepting pair), without
                    # materialising the intersection.
                    if intersection_empty(one, other):
                        return True
    return False


def decompose(
    equations: Sequence[VarEquation],
    automata: Dict[str, Nfa],
    max_branches: int = 128,
    max_noodles: int = 256,
    alphabet: Optional[Tuple[str, ...]] = None,
    max_levi_splits: int = 128,
) -> DecompositionResult:
    """Eliminate the given equations, producing a monadic decomposition.

    The result is a list of branches (disjuncts); an empty list with
    ``complete=True`` means the equations (with the regular constraints) are
    unsatisfiable.  ``complete=False`` signals that some equation was outside
    the supported fragment or a budget was exceeded.  ``alphabet`` supplies
    the language of the fresh variables Levi splits introduce (defaults to
    the union of the given automata's alphabets).
    """
    if alphabet is None:
        sigma: Tuple[str, ...] = tuple(
            sorted(set().union(*(nfa.alphabet for nfa in automata.values())))
        ) if automata else ()
    else:
        sigma = tuple(alphabet)
    universal = Nfa.universal(sigma)
    levi_fresh = 0
    levi_splits = 0

    if _refuted_by_consequences(equations, automata):
        return DecompositionResult(branches=[], complete=True)

    work: List[Tuple[List[VarEquation], Branch]] = [
        (list(equations), Branch(dict(automata)))
    ]
    finished: List[Branch] = []
    complete = True

    while work:
        checkpoint("eqsolver.decompose")
        pending, branch = work.pop()
        if not pending:
            finished.append(branch)
            continue
        equation = pending[0]
        rest = pending[1:]
        lhs = branch.expand_term(equation[0])
        rhs = branch.expand_term(equation[1])

        # Trivial simplifications.
        if lhs == rhs:
            work.append((rest, branch))
            continue
        if len(lhs) == 1 and len(rhs) == 1:
            x, y = lhs[0], rhs[0]
            refined = intersection(branch.automata[x], branch.automata[y]).trim()
            if not refined.states:
                if branch.automata[x].accepts("") and branch.automata[y].accepts(""):
                    refined = Nfa.epsilon_language()
                else:
                    continue  # this branch is unsatisfiable
            new_automata = dict(branch.automata)
            new_automata[x] = refined
            new_automata[y] = refined
            substitution = dict(branch.substitution)
            substitution[x] = (y,)
            work.append((rest, Branch(new_automata, substitution)))
            continue

        oriented = _orient((lhs, rhs))
        if oriented is None:
            # Two-sided concatenation (both sides longer than one variable,
            # or a side-with-occurrence): eliminate by a Levi split.
            if not lhs or not rhs:
                # ε = v₁ … v_n: every variable of the other side is ε.
                side = rhs if not lhs else lhs
                new_automata = dict(branch.automata)
                substitution = dict(branch.substitution)
                feasible = True
                for name in side:
                    if not branch.automata[name].accepts(""):
                        feasible = False
                        break
                    new_automata[name] = Nfa.epsilon_language()
                    substitution[name] = ()
                if feasible:
                    work.append((rest, Branch(new_automata, substitution)))
                continue
            head_l, head_r = lhs[0], rhs[0]
            if head_l == head_r:
                # The same variable heads both sides: cancel it.
                work.append(([(lhs[1:], rhs[1:])] + rest, branch))
                continue
            if levi_splits >= max_levi_splits or (
                len(finished) + len(work) + 2 > max_branches
            ):
                complete = False
                continue
            levi_splits += 1
            # Either |head_l| >= |head_r| (head_l = head_r · f) or the other
            # way around; both reduce to an assignment-shaped equation plus
            # a shorter two-sided remainder (they overlap at f = g = ε).
            for longer, shorter, l_tail, r_tail in (
                (head_l, head_r, lhs[1:], rhs[1:]),
                (head_r, head_l, rhs[1:], lhs[1:]),
            ):
                fresh = f"%levi{levi_fresh}"
                levi_fresh += 1
                new_automata = dict(branch.automata)
                new_automata[fresh] = universal
                split: List[VarEquation] = [
                    ((longer,), (shorter, fresh)),
                    ((fresh,) + tuple(l_tail), tuple(r_tail)),
                ]
                work.append((split + rest, Branch(new_automata, dict(branch.substitution))))
            continue
        x, parts = oriented
        if not parts:
            # x = ε
            if not branch.automata[x].accepts(""):
                continue
            new_automata = dict(branch.automata)
            new_automata[x] = Nfa.epsilon_language()
            substitution = dict(branch.substitution)
            substitution[x] = ()
            work.append((rest, Branch(new_automata, substitution)))
            continue

        try:
            noodles = noodlify_assignment(
                branch.automata[x], [(name, branch.automata[name]) for name in parts], max_noodles
            )
        except EquationTooHard:
            complete = False
            continue

        if len(finished) + len(work) + len(noodles) > max_branches:
            complete = False
            continue

        for noodle in noodles:
            new_automata = dict(branch.automata)
            for name, refined in noodle.items():
                new_automata[name] = refined
            substitution = dict(branch.substitution)
            substitution[x] = tuple(parts)
            work.append((rest, Branch(new_automata, substitution)))

    return DecompositionResult(branches=finished, complete=complete)
