"""Word-equation substrate (stabilization / noodlification fragment).

See :mod:`repro.eqsolver.noodler` for the supported fragment and its
limitations; the string solver reports ``UNKNOWN`` when an input leaves it.
"""

from .noodler import Branch, DecompositionResult, EquationTooHard, decompose, noodlify_assignment

__all__ = [
    "Branch",
    "DecompositionResult",
    "EquationTooHard",
    "decompose",
    "noodlify_assignment",
]
