"""CI smoke over the SMT-LIB corpus: every file answers, 0 wrong verdicts.

Runs the ``repro.smtlib`` frontend (the same path as
``python -m repro.smtlib``) over every ``.smt2`` file next to this script
and checks that

* the script parses and executes,
* it **round-trips**: parse → print → parse → print reaches a printer
  fixpoint,
* every ``check-sat`` produces an answer, and
* no answer contradicts the recorded ``(set-info :status …)`` ground truth
  (``unknown`` statuses only require *an* answer).

``--allow-unknown`` relaxes the "must decide" requirement into the
robustness contract of the budget layer: an ``unknown`` answer is accepted
as long as it is *clean* — a structured reason, no internal errors, no
traceback.  The CI tiny-timeout sweep runs this mode with ``--timeout
0.05`` over the whole corpus: with essentially no budget every file must
still answer promptly, truthfully and without corruption.

Exit status 0 on success, 1 with a per-file failure list otherwise::

    PYTHONPATH=src python benchmarks/smtlib/check_corpus.py [--timeout S] [--allow-unknown]
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import time
from typing import List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(os.path.dirname(_HERE)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def check_corpus(
    timeout: float = 30.0, directory: str = _HERE, allow_unknown: bool = False
) -> List[str]:
    from repro.smtlib import ScriptRunner, parse_problem, parse_script, problem_to_smtlib
    from repro.solver import SolverConfig

    failures: List[str] = []
    paths = sorted(glob.glob(os.path.join(directory, "*.smt2")))
    if not paths:
        return ["no .smt2 files found — run benchmarks/smtlib/generate.py first"]
    for path in paths:
        name = os.path.basename(path)
        with open(path) as handle:
            text = handle.read()
        started = time.monotonic()
        try:
            script = parse_script(text)
            printed = problem_to_smtlib(parse_problem(text), status=script.expected_status)
            reprinted = problem_to_smtlib(parse_problem(printed), status=script.expected_status)
            if printed != reprinted:
                failures.append(f"{name}: printer is not a round-trip fixpoint")
                continue
            runner = ScriptRunner(config=SolverConfig(timeout=timeout))
            runner.run_script(script, name=name)
        except Exception as error:  # noqa: BLE001 - report, keep checking
            failures.append(f"{name}: {type(error).__name__}: {error}")
            continue
        elapsed = time.monotonic() - started
        if not runner.verdicts:
            failures.append(f"{name}: no check-sat answer")
            continue
        verdict = runner.verdicts[-1]
        expected = script.expected_status
        if expected in ("sat", "unsat") and verdict in ("sat", "unsat") and verdict != expected:
            failures.append(f"{name}: WRONG verdict {verdict} (expected {expected})")
            continue
        if runner.internal_errors:
            reason = runner.reasons[-1] if runner.reasons else ""
            failures.append(f"{name}: internal error ({reason})")
            continue
        if verdict not in ("sat", "unsat"):
            if not allow_unknown:
                failures.append(f"{name}: no verdict ({verdict}) within {timeout:.0f}s")
                continue
            reason = runner.reasons[-1] if runner.reasons else ""
            if not reason:
                failures.append(f"{name}: unknown without a structured reason")
                continue
            if elapsed > max(2 * timeout, timeout + 1.0):
                failures.append(
                    f"{name}: answered in {elapsed:.2f}s, over twice the {timeout:.2f}s budget"
                )
                continue
            print(f"[corpus] {name}: {verdict} in {elapsed:.2f}s ({reason})")
            continue
        print(f"[corpus] {name}: {verdict} in {elapsed:.2f}s")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-file wall-clock budget in seconds (default 30)")
    parser.add_argument("--allow-unknown", action="store_true",
                        help="accept clean unknown answers (tiny-timeout robustness sweep)")
    args = parser.parse_args()
    failures = check_corpus(timeout=args.timeout, allow_unknown=args.allow_unknown)
    if failures:
        print(f"[corpus] {len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("[corpus] all files parsed, round-tripped and answered with 0 wrong verdicts")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
