"""Shared fixtures for the benchmark harness.

The evaluation campaign (all solvers on all benchmark sets) is executed once
per session; the per-table/figure benchmarks render their artefacts from it.
Artefacts are written to ``benchmarks/results/``.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: per-instance timeout (seconds) of the scaled-down evaluation; the paper
#: used 120 s on ~150 000 instances.
TIMEOUT = 25.0


@pytest.fixture(scope="session")
def campaign():
    """Run the full (scaled-down) evaluation campaign once per session."""
    from repro.benchgen import position_hard, run_campaign, symbolic_execution
    from repro.benchgen.suite import solver_factories

    sets = {
        "biopython-like": list(symbolic_execution.biopython_like(6, seed=7)),
        "django-like": list(symbolic_execution.django_like(6, seed=8)),
        "thefuck-like": list(symbolic_execution.thefuck_like(5, seed=9)),
        "position-hard": (
            list(position_hard.commuting_disequalities(4, seed=11))
            + list(position_hard.primitive_not_contains(2, seed=13))
        ),
    }
    result = run_campaign(sets, solver_factories(timeout=TIMEOUT), timeout=TIMEOUT)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "records.csv"), "w") as handle:
        handle.write(result.to_csv())
    return result


def write_artifact(name: str, content: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(content)
    return path
