"""Ablation benchmarks for the design choices called out in DESIGN.md.

* single-predicate construction (A^II, §5.2) vs. the general system
  construction (A^III, §5.3) on the same disequality — the dedicated
  construction is markedly cheaper, which is why the solver special-cases it;
* cost of the Parikh/LIA pipeline on a representative tag automaton;
* growth of the generated formula with the number of variable occurrences
  (the paper's polynomiality claim, Theorem 5.2).
"""

import pytest

from repro.automata import compile_regex
from repro.core.predicates import Disequality
from repro.core.single import encode_single
from repro.core.system import encode_system
from repro.lia import LiaConfig, LiaSolver, formula_size


def _automata():
    return {
        "x": compile_regex("(ab)*", alphabet="ab"),
        "y": compile_regex("(a|b)*b", alphabet="ab"),
    }


PREDICATE = Disequality(("x",), ("y",))


def test_single_construction_solving(benchmark):
    automata = _automata()

    def solve():
        encoding = encode_single(PREDICATE, automata)
        return LiaSolver(LiaConfig(timeout=60)).check(encoding.formula).status.value

    result = benchmark(solve)
    assert result == "sat"


def test_system_construction_encoding_only(benchmark):
    """The A^III construction on the same predicate (encoding cost only)."""
    automata = _automata()

    def encode():
        return formula_size(encode_system([PREDICATE], automata).formula)

    size = benchmark(encode)
    single_size = formula_size(encode_single(PREDICATE, automata).formula)
    # The general construction is strictly larger — the reason the solver
    # special-cases single predicates.
    assert size > single_size


def test_formula_size_grows_polynomially(benchmark):
    """Theorem 5.2: |φ^II| is polynomial in n·m·|R|."""
    automata = {
        "x": compile_regex("(ab)*", alphabet="ab"),
        "y": compile_regex("(ba)*", alphabet="ab"),
        "z": compile_regex("a*", alphabet="ab"),
    }

    def sizes():
        results = []
        for occurrences in (1, 2, 3):
            predicate = Disequality(("x", "y") * occurrences, ("z",) * occurrences)
            results.append(formula_size(encode_single(predicate, automata).formula))
        return results

    values = benchmark(sizes)
    assert values[0] < values[1] < values[2]
    # Roughly quadratic growth in the number of occurrence pairs — far below
    # the exponential blow-up of the naive ordering enumeration (§5.3 intro).
    assert values[2] < 25 * values[0]


def test_parikh_lia_pipeline(benchmark):
    """End-to-end LIA solving cost of a representative Parikh tag formula."""
    automata = {
        "x": compile_regex("(abc)*", alphabet="abc"),
        "y": compile_regex("(a|b|c)*", alphabet="abc"),
    }
    encoding = encode_single(Disequality(("x",), ("y",)), automata)

    def solve():
        return LiaSolver(LiaConfig(timeout=60)).check(encoding.formula).status.value

    assert benchmark(solve) == "sat"
