"""Figure 7 reproduction: cactus plot data (sorted runtimes per solver).

The paper's Fig. 7 shows Z3-Noodler-pos dominating the cactus plot (most
instances solved for any time budget).  We emit the sorted-runtime series and
check that the position solver solves at least as many instances as either
baseline at the full budget.
"""

from conftest import write_artifact


def test_fig7_cactus_data(campaign, benchmark):
    series = benchmark(campaign.cactus_series)
    rendering = campaign.format_cactus()
    lines = ["solver,index,time"]
    for solver, times in series.items():
        for index, value in enumerate(times):
            lines.append(f"{solver},{index + 1},{value:.4f}")
    write_artifact("fig7_cactus.csv", "\n".join(lines) + "\n")
    write_artifact("fig7_cactus.txt", rendering + "\n")
    print("\n" + rendering)

    solved = {solver: len(times) for solver, times in series.items()}
    assert solved["repro-pos"] >= solved["eager-reduction"]
    assert solved["repro-pos"] >= solved["enumerative"]
