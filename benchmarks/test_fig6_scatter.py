"""Figure 6 reproduction: per-instance scatter of our solver vs. each baseline.

The paper's Fig. 6 plots Z3-Noodler-pos against Z3, cvc5 and OSTRICH with one
point per formula (timeouts on the dashed border).  Here we emit the same
per-instance data for the two baselines as CSV plus a win/loss/tie summary.
"""

from conftest import write_artifact


def _summarise(points, timeout):
    wins = sum(1 for _, ours, theirs in points if ours < theirs)
    losses = sum(1 for _, ours, theirs in points if theirs < ours)
    ties = len(points) - wins - losses
    only_ours = sum(1 for _, ours, theirs in points if theirs >= timeout and ours < timeout)
    only_theirs = sum(1 for _, ours, theirs in points if ours >= timeout and theirs < timeout)
    return wins, losses, ties, only_ours, only_theirs


def test_fig6_scatter_data(campaign, benchmark):
    def build():
        blocks = {}
        for baseline in ("eager-reduction", "enumerative"):
            blocks[baseline] = campaign.scatter_points("repro-pos", baseline)
        return blocks

    blocks = benchmark(build)
    lines = ["instance,ours,baseline,baseline_name"]
    summary_lines = []
    for baseline, points in blocks.items():
        for name, ours, theirs in points:
            lines.append(f"{name},{ours:.4f},{theirs:.4f},{baseline}")
        wins, losses, ties, only_ours, only_theirs = _summarise(points, campaign.timeout)
        summary_lines.append(
            f"vs {baseline}: faster on {wins}, slower on {losses}, tied {ties}; "
            f"solved-only-by-us {only_ours}, solved-only-by-them {only_theirs}"
        )
    write_artifact("fig6_scatter.csv", "\n".join(lines) + "\n")
    summary = "\n".join(summary_lines)
    write_artifact("fig6_summary.txt", summary + "\n")
    print("\n" + summary)

    # Shape check: against each baseline there are instances only we solve.
    for baseline, points in blocks.items():
        _, _, _, only_ours, _ = _summarise(points, campaign.timeout)
        assert only_ours > 0, f"expected instances solved only by repro-pos vs {baseline}"
