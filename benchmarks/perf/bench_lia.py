"""Micro-benchmark harness for the incremental DPLL(T) LIA stack.

Four workloads are timed:

* **mbqi** — ¬contains chains (one instantiation lemma per predicate, so a
  ``k``-chain drives ``k+1`` LIA queries through the solve–refine loop).
  Each instance is run twice: on the incremental assertion stack (the
  default) and in from-scratch mode (``SolverConfig.incremental_lia=False``,
  one fresh ``LiaSolver.check`` per round — the seed's behaviour).
* **cuts** — commuting-disequality instances whose ``unsat`` verdicts need
  the Gomory/Omega cutting planes of the integer core (sound
  branch-and-bound alone diverges).  Any verdict disagreeing with the
  ground truth counts as a wrong verdict and fails the gate — in quick CI
  mode too.
* **distinct** — the n-ary ``distinct`` family (pairwise disequality
  groups over universal, constrained and pigeonhole automata, with and
  without length bounds) answered by the easy-case witness path.  The gate
  (quick mode included): 0 wrong verdicts and *no timeouts* —
  ``(distinct x y z)`` used to run out the clock inside the ``A^III``
  system encoding.
* **session** — a symbolic-execution-style chain of related ``check`` calls
  driven twice: through one incremental :class:`repro.Session` (warm
  pipeline caches, pinned branch LIA solvers) and as repeated one-shot
  ``PositionSolver.check`` calls on each prefix (cold caches, the pre-PR-3
  interface).  Verdicts must be identical; the speedup is the headline
  number of the session API.
* **e2e** — the scaled-down end-to-end benchmark suite
  (:func:`repro.benchgen.suite.benchmark_sets`, scale 1) under the position
  solver with a 20 s per-instance timeout.
* **pipelines** — the string-pipeline workload
  (:mod:`repro.benchgen.pipelines`): symbolic pipe programs compiled to
  deep substr/replace/concat chains, each carrying an exact ground truth
  from concrete execution.  The gate (quick mode included): every curated
  instance *decided*, 0 wrong verdicts, every sat model verified by the
  semantics oracle.
* **automata** — the integer-dense automata core (bitset subset
  construction, lazy product emptiness, dense inclusion) timed against the
  seed's set-based implementations kept in ``repro.automata.legacy``, on
  the same randomly generated NFA pairs.  Both implementations must agree
  on every verdict (DFA size, emptiness, inclusion — ``wrong_verdicts``
  must stay 0) and the dense pass must be at least
  ``AUTOMATA_SPEEDUP_FLOOR``× faster in-process.

Speedups are reported against ``seed_baseline.json`` — per-instance timings
of the pre-incremental seed measured on the same machine — and the result is
written to ``BENCH_lia.json`` next to this file.  Verdict changes against
the seed are listed explicitly and classified: ``improved`` (the seed ran
out of budget, the new solver solves it with a verified model), ``corrected``
(the seed's verdict is contradicted by a model-verified answer — the seed's
conflict cores were unsound, see ``repro.lia.intsolver``), and
``newly_unsolved`` (sound conflict cores cost enough that the instance no
longer fits the budget).  ``wrong_verdicts`` counts contradictions with
ground-truth expectations and must stay 0.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_lia.py [--quick] [--output P]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(os.path.dirname(_HERE)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

SEED_BASELINE_PATH = os.path.join(_HERE, "seed_baseline.json")
DEFAULT_OUTPUT_PATH = os.path.join(_HERE, "BENCH_lia.json")

#: per-instance timeout of the e2e workload (matches the seed baseline)
E2E_TIMEOUT = 20.0
#: generous cap for the MBQI instances
MBQI_TIMEOUT = 120.0

#: chain lengths of the MBQI workload (quick mode runs only the first)
MBQI_CHAINS = (4, 6, 8)
#: benchmark sets of the quick e2e smoke (a subset that runs in ~a minute)
QUICK_E2E_SETS = ("thefuck-like",)
#: commuting-disequality instances of the cuts workload (quick mode runs
#: only the first); both expect ``unsat`` via the cutting-plane core
CUTS_INSTANCES = ("position-hard-comm-0", "position-hard-comm-3")
#: per-instance timeout of the cuts workload (the acceptance bar is well
#: below this; a timeout shows up as a non-``unsat`` status)
CUTS_TIMEOUT = 25.0
#: per-instance timeout of the distinct workload — the witness path
#: answers in milliseconds, so a generous budget only ever catches a
#: regression back into the encoding
DISTINCT_TIMEOUT = 20.0
#: distinct instances run in quick mode (the full list in ``run_distinct``)
DISTINCT_QUICK = ("distinct-3", "distinct-5", "distinct-php-3-over-2")
#: minimum in-process speedup of the dense automata core over the legacy
#: set-based implementations (the acceptance bar of the dense rework)
AUTOMATA_SPEEDUP_FLOOR = 5.0
#: NFA pairs measured by the automata workload (quick mode runs fewer)
AUTOMATA_PAIRS = 12
AUTOMATA_QUICK_PAIRS = 4
#: per-check timeout of the session workload
SESSION_TIMEOUT = 60.0
#: per-instance timeout of the pipelines workload (curated instances all
#: answer in a couple of seconds; the cap matches the corpus gate)
PIPELINES_TIMEOUT = 30.0
#: pipeline instances run in quick mode
PIPELINES_QUICK_COUNT = 6
#: chain length of the session workload (quick mode runs a prefix)
SESSION_STEPS = 12
SESSION_QUICK_STEPS = 6


def _chain_problem(k: int):
    from repro.lia import ge
    from repro.strings.ast import (
        Contains,
        LengthConstraint,
        Problem,
        RegexMembership,
        str_len,
        term,
    )

    problem = Problem(alphabet=tuple("abc"), name=f"nc-chain-{k}")
    names = [f"x{i}" for i in range(k + 1)]
    for name in names:
        problem.add(RegexMembership(name, "a*"))
    for i in range(k):
        problem.add(Contains(term(names[i + 1]), term(names[i]), positive=False))
    problem.add(LengthConstraint(ge(str_len(names[0]), 2)))
    return problem


def _solve(problem, timeout: float, incremental: bool):
    from repro.solver import PositionSolver, SolverConfig

    config = SolverConfig(timeout=timeout, incremental_lia=incremental)
    start = time.monotonic()
    result = PositionSolver(config).check(problem)
    elapsed = time.monotonic() - start
    return result, elapsed


def run_mbqi(baseline: Dict, quick: bool) -> Dict:
    chains = MBQI_CHAINS[:1] if quick else MBQI_CHAINS
    instances = {}
    for k in chains:
        name = f"nc-chain-{k}"
        problem = _chain_problem(k)
        incremental, inc_seconds = _solve(problem, MBQI_TIMEOUT, incremental=True)
        scratch, scr_seconds = _solve(problem, MBQI_TIMEOUT, incremental=False)
        seed = baseline["mbqi"].get(name, {})
        entry = {
            "status": incremental.status.value,
            "lia_queries": incremental.lia_queries,
            "incremental_seconds": round(inc_seconds, 3),
            "scratch_seconds": round(scr_seconds, 3),
            "scratch_status": scratch.status.value,
            "speedup_incremental_vs_scratch": round(scr_seconds / inc_seconds, 2),
            "stats": incremental.stats,
        }
        if seed:
            entry["seed_seconds"] = seed["seconds"]
            entry["speedup_vs_seed"] = round(seed["seconds"] / inc_seconds, 2)
            entry["verdict_matches_seed"] = incremental.status.value == seed["status"]
        instances[name] = entry
        print(
            f"[mbqi] {name}: {entry['status']} in {inc_seconds:.2f}s "
            f"(scratch {scr_seconds:.2f}s, seed {seed.get('seconds', '—')}s, "
            f"{entry['lia_queries']} queries)"
        )
    return {"timeout": MBQI_TIMEOUT, "instances": instances}


def _session_chain_atoms():
    """A symbolic-execution path: each step narrows the previous query."""
    from repro.lia import eq as lia_eq, ge, le
    from repro.strings.ast import (
        Contains,
        LengthConstraint,
        PrefixOf,
        RegexMembership,
        WordEquation,
        lit,
        str_len,
        term,
    )

    return [
        RegexMembership("path", "(a|b|/)*"),
        RegexMembership("user", "(a|b)(a|b)*"),
        PrefixOf(term(lit("a/")), term("path"), positive=False),
        LengthConstraint(ge(str_len("path"), 3)),
        RegexMembership("doc", "(a|b)*"),
        WordEquation(term("user"), term("doc"), positive=False),
        LengthConstraint(lia_eq(str_len("user"), str_len("doc"))),
        LengthConstraint(le(str_len("user"), 6)),
        RegexMembership("seg", "(ab)*"),
        Contains(term(lit("bb")), term("seg"), positive=False),
        LengthConstraint(ge(str_len("seg"), 4)),
        LengthConstraint(ge(str_len("doc"), 2)),
    ]


def run_session(quick: bool) -> Dict:
    from repro.solver import PositionSolver, Session, SolverConfig
    from repro.strings.ast import Problem

    alphabet = tuple("ab/")
    atoms = _session_chain_atoms()[: SESSION_QUICK_STEPS if quick else SESSION_STEPS]

    session = Session(config=SolverConfig(timeout=SESSION_TIMEOUT), alphabet=alphabet)
    session_verdicts = []
    start = time.monotonic()
    for atom in atoms:
        session.add(atom)
        session_verdicts.append(session.check().status.value)
    session_seconds = time.monotonic() - start

    oneshot_verdicts = []
    start = time.monotonic()
    for index in range(len(atoms)):
        problem = Problem(atoms=atoms[: index + 1], alphabet=alphabet,
                          name=f"session-chain-{index}")
        config = SolverConfig(timeout=SESSION_TIMEOUT)
        oneshot_verdicts.append(PositionSolver(config).check(problem).status.value)
    oneshot_seconds = time.monotonic() - start

    mismatches = sum(1 for a, b in zip(session_verdicts, oneshot_verdicts) if a != b)
    entry = {
        "steps": len(atoms),
        "timeout": SESSION_TIMEOUT,
        "session_seconds": round(session_seconds, 3),
        "oneshot_seconds": round(oneshot_seconds, 3),
        "speedup_session_vs_oneshot": round(oneshot_seconds / session_seconds, 2),
        "verdicts": session_verdicts,
        "verdict_mismatches": mismatches,
        "stats": {
            key: value
            for key, value in session.statistics().items()
            if "hits" in key or "reuse" in key or key in ("checks", "lia_parts_asserted")
        },
    }
    print(
        f"[session] {entry['steps']}-step chain: session {session_seconds:.2f}s, "
        f"one-shot {oneshot_seconds:.2f}s "
        f"({entry['speedup_session_vs_oneshot']}x, {mismatches} mismatches)"
    )
    return entry


def run_cuts(quick: bool) -> Dict:
    from repro.benchgen.position_hard import commuting_disequalities

    wanted = CUTS_INSTANCES[:1] if quick else CUTS_INSTANCES
    instances: Dict[str, Dict] = {}
    wrong_verdicts = 0
    for name, problem, expected in commuting_disequalities(4):
        if name not in wanted:
            continue
        result, elapsed = _solve(problem, CUTS_TIMEOUT, incremental=True)
        status = result.status.value
        if expected is not None and result.solved and status != expected:
            wrong_verdicts += 1
        instances[name] = {
            "status": status,
            "expected": expected,
            "seconds": round(elapsed, 3),
            "stats": result.stats,
        }
        print(f"[cuts] {name}: {status} (expected {expected}) in {elapsed:.2f}s")
    return {
        "timeout": CUTS_TIMEOUT,
        "wrong_verdicts": wrong_verdicts,
        "instances": instances,
    }


def _distinct_problems():
    from repro.lia import eq as lia_eq, ge, le
    from repro.strings.ast import (
        LengthConstraint,
        Problem,
        RegexMembership,
        WordEquation,
        str_len,
        term,
    )

    def distinct(names):
        return [
            WordEquation(term(a), term(b), positive=False)
            for i, a in enumerate(names)
            for b in names[i + 1 :]
        ]

    problems = []
    for count in (3, 4, 5):
        names = [f"v{i}" for i in range(count)]
        problem = Problem(alphabet=tuple("ab"), name=f"distinct-{count}")
        for atom in distinct(names):
            problem.add(atom)
        problems.append((f"distinct-{count}", problem, "sat"))

    problem = Problem(alphabet=tuple("ab"), name="distinct-3-constrained")
    for name in ("x", "y", "z"):
        problem.add(RegexMembership(name, "(ab)*"))
    for atom in distinct(["x", "y", "z"]):
        problem.add(atom)
    problems.append(("distinct-3-constrained", problem, "sat"))

    problem = Problem(alphabet=tuple("ab"), name="distinct-3-bounded")
    for atom in distinct(["x", "y", "z"]):
        problem.add(atom)
    problem.add(LengthConstraint(ge(str_len("x"), 2)))
    problem.add(LengthConstraint(le(str_len("y"), 1)))
    problem.add(LengthConstraint(lia_eq(str_len("z"), 3)))
    problems.append(("distinct-3-bounded", problem, "sat"))

    problem = Problem(alphabet=tuple("ab"), name="distinct-php-3-over-2")
    for name in ("x", "y", "z"):
        problem.add(RegexMembership(name, "a|b"))
    for atom in distinct(["x", "y", "z"]):
        problem.add(atom)
    problems.append(("distinct-php-3-over-2", problem, "unsat"))

    problem = Problem(alphabet=tuple("ab"), name="distinct-php-4-over-3")
    names = ["x", "y", "z", "w"]
    for name in names:
        problem.add(RegexMembership(name, "a|b|ab"))
    for atom in distinct(names):
        problem.add(atom)
    problems.append(("distinct-php-4-over-3", problem, "unsat"))
    return problems


def run_distinct(quick: bool) -> Dict:
    from repro.strings.semantics import eval_problem

    instances: Dict[str, Dict] = {}
    wrong_verdicts = 0
    timeouts = 0
    for name, problem, expected in _distinct_problems():
        if quick and name not in DISTINCT_QUICK:
            continue
        result, elapsed = _solve(problem, DISTINCT_TIMEOUT, incremental=True)
        status = result.status.value
        model_verified = None
        if result.is_sat and result.model is not None:
            model_verified = eval_problem(
                problem, result.model.strings, result.model.integers
            )
        if result.solved and status != expected:
            wrong_verdicts += 1
        if model_verified is False:
            wrong_verdicts += 1
        if not result.solved:
            timeouts += 1
        instances[name] = {
            "status": status,
            "expected": expected,
            "seconds": round(elapsed, 3),
            "model_verified": model_verified,
            "stats": result.stats,
        }
        print(
            f"[distinct] {name}: {status} (expected {expected}) in {elapsed:.3f}s"
        )
    return {
        "timeout": DISTINCT_TIMEOUT,
        "wrong_verdicts": wrong_verdicts,
        "timeouts": timeouts,
        "instances": instances,
    }


def run_e2e(baseline: Dict, quick: bool) -> Dict:
    from repro.benchgen.suite import benchmark_sets
    from repro.strings.semantics import eval_problem

    sets = benchmark_sets(scale=1, seed=7)
    if quick:
        sets = {name: sets[name] for name in QUICK_E2E_SETS}

    seed_instances = baseline["e2e"]["instances"]
    instances: Dict[str, Dict] = {}
    verdict_changes = []
    wrong_verdicts = 0
    total = 0.0
    seed_total = 0.0
    for set_name, items in sets.items():
        for instance_name, problem, expected in items:
            key = f"{set_name}/{instance_name}"
            result, elapsed = _solve(problem, E2E_TIMEOUT, incremental=True)
            status = result.status.value
            model_verified = False
            if result.is_sat and result.model is not None:
                model_verified = eval_problem(
                    problem, result.model.strings, result.model.integers
                )
            if expected is not None and result.solved and status != expected:
                wrong_verdicts += 1
            total += elapsed
            entry = {
                "status": status,
                "seconds": round(elapsed, 3),
                "expected": expected,
                "stats": result.stats,
            }
            seed = seed_instances.get(key)
            if seed:
                seed_total += seed["seconds"]
                entry["seed_status"] = seed["status"]
                entry["seed_seconds"] = seed["seconds"]
                if seed["status"] != status:
                    if status in ("sat", "unsat") and seed["status"] in ("timeout", "unknown"):
                        kind = "improved"
                    elif status in ("sat", "unsat") and model_verified:
                        kind = "corrected"
                    else:
                        kind = "newly_unsolved"
                    verdict_changes.append(
                        {"instance": key, "seed": seed["status"], "now": status, "kind": kind}
                    )
            instances[key] = entry
    summary = {
        "timeout": E2E_TIMEOUT,
        "total_seconds": round(total, 2),
        "seed_total_seconds": round(seed_total, 2),
        "speedup_vs_seed": round(seed_total / total, 2) if total else None,
        "instances_run": len(instances),
        "wrong_verdicts": wrong_verdicts,
        "verdict_changes": verdict_changes,
        "instances": instances,
    }
    print(
        f"[e2e] {len(instances)} instances in {total:.1f}s "
        f"(seed {seed_total:.1f}s, speedup {summary['speedup_vs_seed']}x, "
        f"{len(verdict_changes)} verdict changes, {wrong_verdicts} wrong)"
    )
    return summary


def run_pipelines(quick: bool) -> Dict:
    from repro.benchgen.suite import benchmark_sets
    from repro.strings.semantics import eval_problem

    items = benchmark_sets(scale=1, seed=7)["pipeline"]
    if quick:
        items = items[:PIPELINES_QUICK_COUNT]
    instances: Dict[str, Dict] = {}
    wrong_verdicts = 0
    undecided = 0
    models_unverified = 0
    total = 0.0
    for name, problem, expected in items:
        result, elapsed = _solve(problem, PIPELINES_TIMEOUT, incremental=True)
        status = result.status.value
        model_verified = None
        if result.is_sat:
            model = result.model
            model_verified = model is not None and eval_problem(
                problem, model.strings, model.integers
            )
            if not model_verified:
                models_unverified += 1
        if expected is not None and result.solved and status != expected:
            wrong_verdicts += 1
        if not result.solved:
            undecided += 1
        total += elapsed
        instances[name] = {
            "status": status,
            "expected": expected,
            "seconds": round(elapsed, 3),
            "model_verified": model_verified,
            "stats": result.stats,
        }
        print(f"[pipelines] {name}: {status} (expected {expected}) in {elapsed:.2f}s")
    return {
        "timeout": PIPELINES_TIMEOUT,
        "total_seconds": round(total, 2),
        "wrong_verdicts": wrong_verdicts,
        "undecided": undecided,
        "models_unverified": models_unverified,
        "instances": instances,
    }


def _automata_instances(quick: bool):
    """Seeded NFA families over a two-symbol alphabet.

    Two shapes, matching how the solver stresses the automata core:

    * ``blowup-*`` — ``(a|b)* a (a|b)^{k-1}`` plus a few random extra
      edges: subset construction reaches ~2^k subsets (determinize /
      complement pressure);
    * ``pair-*`` — random 12–16-state NFA pairs as produced by regex
      compilation: product emptiness and inclusion pressure (the
      consequence pre-pass, guard pruning and the MBQI ¬contains loop).
    """
    import random

    from repro.automata.nfa import Nfa

    rng = random.Random(20260808)

    blowups = []
    for index, k in enumerate((8, 9, 10, 8, 9, 10)[: 2 if quick else 6]):
        nfa = Nfa({"a", "b"})
        states = [nfa.add_state() for _ in range(k + 1)]
        nfa.add_transition(states[0], "a", states[0])
        nfa.add_transition(states[0], "b", states[0])
        nfa.add_transition(states[0], "a", states[1])
        for i in range(1, k):
            nfa.add_transition(states[i], "a", states[i + 1])
            nfa.add_transition(states[i], "b", states[i + 1])
        nfa.make_initial(states[0])
        nfa.make_final(states[k])
        for _ in range(3):
            nfa.add_transition(rng.choice(states), rng.choice("ab"), rng.choice(states))
        blowups.append((f"blowup-{index}", nfa))

    pairs = []
    for index in range(AUTOMATA_QUICK_PAIRS if quick else AUTOMATA_PAIRS):
        entry = []
        for _ in range(2):
            n = rng.randint(12, 16)
            nfa = Nfa({"a", "b"})
            states = [nfa.add_state() for _ in range(n)]
            for _ in range(4 * n):
                nfa.add_transition(
                    rng.choice(states), rng.choice("ab"), rng.choice(states)
                )
            nfa.make_initial(states[0])
            for _ in range(2):
                nfa.make_final(rng.choice(states))
            entry.append(nfa)
        pairs.append((f"pair-{index}", entry[0], entry[1]))
    return blowups, pairs


def run_automata(quick: bool) -> Dict:
    from repro.automata import legacy as leg
    from repro.automata import operations as ops

    sigma = "ab"
    blowups, pairs = _automata_instances(quick)

    def dense_pass():
        verdicts = []
        for _, a in blowups:
            # Fresh copies so each timed pass pays its own dense compilation.
            a = a.copy()
            a._dense = None
            dfa, _ = ops.determinize(a, sigma)
            verdicts.append((len(dfa.states), ops.complement(a, sigma).is_empty()))
        for _, a, b in pairs:
            a, b = a.copy(), b.copy()
            a._dense = b._dense = None
            # Emptiness is answered lazily — no product is materialised.
            verdicts.append(
                (ops.intersection_empty(a, b), ops.is_subset(a, b, sigma))
            )
        return verdicts

    def legacy_pass():
        verdicts = []
        for _, a in blowups:
            dfa, _ = leg.legacy_determinize(a, sigma)
            verdicts.append(
                (len(dfa.states), leg.legacy_is_empty(leg.legacy_complement(a, sigma)))
            )
        for _, a, b in pairs:
            # The seed's emptiness path: materialise the product, trim it,
            # inspect the survivors (see repro.automata.legacy).
            verdicts.append(
                (
                    leg.legacy_intersection_empty(a, b),
                    leg.legacy_is_subset(a, b, sigma),
                )
            )
        return verdicts

    def best_of_three(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    # Warm-up (bytecode, allocator), then best-of-3 for each side.
    dense_verdicts = dense_pass()
    legacy_verdicts = legacy_pass()
    dense_seconds = best_of_three(dense_pass)
    legacy_seconds = best_of_three(legacy_pass)

    wrong_verdicts = sum(
        1 for d, l in zip(dense_verdicts, legacy_verdicts) if d != l
    )
    names = [name for name, _ in blowups] + [name for name, _, _ in pairs]
    entry = {
        "instances": len(names),
        "dense_seconds": round(dense_seconds, 4),
        "legacy_seconds": round(legacy_seconds, 4),
        "speedup_dense_vs_legacy": round(legacy_seconds / dense_seconds, 2),
        "speedup_floor": AUTOMATA_SPEEDUP_FLOOR,
        "wrong_verdicts": wrong_verdicts,
        "verdicts": dict(zip(names, dense_verdicts)),
    }
    print(
        f"[automata] {len(names)} instances: dense {dense_seconds:.3f}s, "
        f"legacy {legacy_seconds:.3f}s "
        f"({entry['speedup_dense_vs_legacy']}x, {wrong_verdicts} wrong)"
    )
    return entry


def run(quick: bool = False, output: Optional[str] = None) -> Dict:
    with open(SEED_BASELINE_PATH) as fh:
        baseline = json.load(fh)
    report = {
        "schema": 1,
        "quick": quick,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "automata": run_automata(quick),
        "mbqi": run_mbqi(baseline, quick),
        "session": run_session(quick),
        "cuts": run_cuts(quick),
        "distinct": run_distinct(quick),
        "pipelines": run_pipelines(quick),
        "e2e": run_e2e(baseline, quick),
    }
    path = output or DEFAULT_OUTPUT_PATH
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench] report written to {path}")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke subset")
    parser.add_argument("--output", default=None, help="output JSON path")
    args = parser.parse_args()
    run(quick=args.quick, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
