"""Pytest wrapper for the LIA perf benchmark harness.

Selected with ``pytest -m bench`` (optionally ``--quick``); in a regular
test run the module skips itself so the tier-1 suite stays fast.  In quick
mode the measured times are gated against the committed ``BENCH_lia.json``:
the job fails when the quick workload regresses by more than 25 % — and,
independently of timing, whenever any workload (the automata core, the
commuting-disequality cuts instances, the distinct family or the e2e
suite) produces a wrong verdict or a distinct instance times out, the
session chain diverges from (or fails to beat) the repeated one-shot
path, or the dense automata core drops below its in-process speedup
floor over the legacy implementations.
"""

import json
import os
import shutil

import pytest

from bench_lia import AUTOMATA_SPEEDUP_FLOOR, DEFAULT_OUTPUT_PATH, run

#: tolerated slowdown against the committed baseline before the gate fails
REGRESSION_FACTOR = 1.25


@pytest.fixture(scope="module")
def bench_selected(request):
    markexpr = request.config.getoption("-m") or ""
    if "bench" not in markexpr:
        pytest.skip("benchmark harness runs only with -m bench")
    return request.config.getoption("--quick")


@pytest.mark.bench
def test_bench_lia(bench_selected, tmp_path_factory):
    quick = bench_selected
    # Always measure into a scratch file: the committed BENCH_lia.json is
    # only replaced after a full run passes its assertions, so a regressed
    # run cannot clobber the baseline the CI gate compares against.
    output = str(tmp_path_factory.mktemp("bench") / "BENCH_lia.json")
    report = run(quick=quick, output=output)

    # Automata workload: the dense core must agree with the legacy
    # set-based oracles on every verdict and beat them by the committed
    # floor — an in-process ratio, so it gates in quick mode too.
    automata = report["automata"]
    assert automata["wrong_verdicts"] == 0, automata["verdicts"]
    assert automata["speedup_dense_vs_legacy"] >= AUTOMATA_SPEEDUP_FLOOR, (
        f"dense automata core below the {AUTOMATA_SPEEDUP_FLOOR}x floor: "
        f"{automata['speedup_dense_vs_legacy']}x "
        f"(dense {automata['dense_seconds']}s, legacy {automata['legacy_seconds']}s)"
    )

    mbqi = report["mbqi"]["instances"]
    assert mbqi, "no MBQI instances ran"
    for name, entry in mbqi.items():
        assert entry["status"] == "sat", f"{name} no longer solves: {entry['status']}"
        assert entry["lia_queries"] >= 5, f"{name} stopped exercising the MBQI loop"

    # Session workload: the incremental chain must agree with the one-shot
    # path step by step and actually be faster (the acceptance bar of the
    # session API redesign).
    session = report["session"]
    assert session["verdict_mismatches"] == 0, session
    assert session["steps"] >= (6 if quick else 10), session
    assert session["speedup_session_vs_oneshot"] >= 1.5, (
        f"session chain no faster than repeated one-shot checks: {session}"
    )

    # Verdict gate (applies in quick mode too): any wrong verdict anywhere —
    # the cuts workload, the distinct family or the e2e suite — fails the
    # job outright.
    cuts = report["cuts"]
    assert cuts["wrong_verdicts"] == 0, cuts["instances"]
    for name, entry in cuts["instances"].items():
        assert entry["status"] == entry["expected"] == "unsat", (
            f"{name} must be refuted by the cutting-plane core: {entry}"
        )
    distinct = report["distinct"]
    assert distinct["wrong_verdicts"] == 0, distinct["instances"]
    # The headline of the distinct fix: no instance may time out — the
    # witness path answers (distinct x y z) in milliseconds where the
    # A^III encoding used to run out the clock.
    assert distinct["timeouts"] == 0, distinct["instances"]
    for name, entry in distinct["instances"].items():
        assert entry["status"] == entry["expected"], (name, entry)
        if entry["status"] == "sat":
            assert entry["model_verified"] is True, (name, entry)
    e2e = report["e2e"]
    assert e2e["wrong_verdicts"] == 0, e2e["verdict_changes"]
    # Pipelines workload: every curated pipe instance must be *decided*
    # (the corpus gate depends on it), agree with its concrete-execution
    # ground truth, and back every sat with a semantics-verified model.
    pipelines = report["pipelines"]
    assert pipelines["wrong_verdicts"] == 0, pipelines["instances"]
    assert pipelines["undecided"] == 0, pipelines["instances"]
    assert pipelines["models_unverified"] == 0, pipelines["instances"]

    if not quick:
        # Full run: check the headline speedups the incremental rework
        # claims, then promote the measurement to the committed perf record.
        chain6 = mbqi["nc-chain-6"]
        assert chain6["speedup_vs_seed"] >= 3.0, chain6
        assert e2e["speedup_vs_seed"] >= 1.5, {
            "total": e2e["total_seconds"],
            "seed": e2e["seed_total_seconds"],
        }
        shutil.copyfile(output, DEFAULT_OUTPUT_PATH)
        return

    # Quick run: regression gate against the committed BENCH_lia.json.
    if not os.path.exists(DEFAULT_OUTPUT_PATH):
        pytest.skip("no committed BENCH_lia.json to gate against")
    with open(DEFAULT_OUTPUT_PATH) as fh:
        committed = json.load(fh)

    chain4_now = report["mbqi"]["instances"]["nc-chain-4"]["incremental_seconds"]
    chain4_ref = committed["mbqi"]["instances"]["nc-chain-4"]["incremental_seconds"]
    assert chain4_now <= chain4_ref * REGRESSION_FACTOR, (
        f"MBQI quick bench regressed: {chain4_now:.2f}s vs committed "
        f"{chain4_ref:.2f}s (tolerance {REGRESSION_FACTOR}x)"
    )

    ref_instances = committed["e2e"]["instances"]
    now_total = ref_total = 0.0
    for key, entry in report["e2e"]["instances"].items():
        reference = ref_instances.get(key)
        if reference is None:
            continue
        now_total += entry["seconds"]
        ref_total += reference["seconds"]
    assert ref_total > 0, "quick e2e subset missing from committed BENCH_lia.json"
    assert now_total <= ref_total * REGRESSION_FACTOR, (
        f"e2e quick bench regressed: {now_total:.1f}s vs committed "
        f"{ref_total:.1f}s (tolerance {REGRESSION_FACTOR}x)"
    )
