"""Latency-under-load benchmark + verdict-identity gate for ``repro.serve``.

Two phases against one real server subprocess (spawned workers, warm
automata caches seeded from the corpus):

* **identity** — every corpus script is solved in-process (the
  ``python -m repro.smtlib`` path, same timeout) and through the server at
  concurrency :data:`IDENTITY_CONCURRENCY` (low enough that a one-core box
  racing two strategies per job keeps the slowest corpus file inside the
  shared timeout).  Gates: **0 wrong verdicts** (a decided server verdict
  may not contradict a decided in-process verdict, nor the corpus's
  ``(set-info :status …)`` ground truth), **0 dropped answers** (one
  answer per ``check-sat``, every request responded to) and **every
  unknown structured** (a ``; unknown: <reason>`` line per undecided
  check).  Decidedness itself may differ — the portfolio sometimes
  decides where one config gives up, and scheduling noise can cost a
  borderline instance — so those are *reported* (``server_only_decided``
  / ``local_only_decided``), not failed.

* **load** — a traffic replay of the corpus's fast slice (in-process time
  under :data:`FAST_SLICE_SECONDS`) at several client concurrency levels,
  measuring per-request wall latency from the client side.  Reported per
  level: p50/p99/mean latency and throughput.  On a small box the workers
  timeshare one core and the portfolio doubles the work per job, so
  throughput plateaus early and p99 grows with concurrency — the point of
  the bench is to put numbers on exactly that.

The report lands in ``BENCH_serve.json`` next to this file (``--output``
to redirect), including the server's own counters (dedup, cancellations,
restarts) and the shutdown exit code — the run fails unless the server
exits 0 with every worker reaped.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py [--quick] [--output P]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import re
import statistics
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(os.path.dirname(_HERE))
_SRC = os.path.join(_REPO, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

DEFAULT_OUTPUT_PATH = os.path.join(_HERE, "BENCH_serve.json")
CORPUS_DIR = os.path.join(_REPO, "benchmarks", "smtlib")

#: per-job wall budget, both in-process and on the server
TIMEOUT = 30.0
#: corpus files at most this slow in-process form the load-phase slice
FAST_SLICE_SECONDS = 0.35
#: client concurrency of the verdict-identity phase
IDENTITY_CONCURRENCY = 2
#: client concurrency levels of the load phase
CONCURRENCY_LEVELS = (1, 2, 4, 8)
#: requests per concurrency level (full / quick)
QUERIES_PER_LEVEL = 300
QUERIES_PER_LEVEL_QUICK = 30
#: corpus slice of the quick identity phase (files, sorted order)
QUICK_IDENTITY_SLICE = 12


class _ServerProc:
    """The benchmarked ``python -m repro.serve`` subprocess."""

    def __init__(self, workers: int) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [_SRC] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--port", "0",
                "--workers", str(workers),
                "--timeout", str(TIMEOUT),
                "--warm", os.path.join(CORPUS_DIR, "*.smt2"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=_REPO,
            text=True,
        )
        ready = self.proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", ready)
        if not match:
            self.proc.kill()
            raise RuntimeError(f"server did not start: {ready!r}\n{self.proc.stderr.read()}")
        self.host, self.port = match.group(1), int(match.group(2))

    def client(self):
        from repro.serve import ServeClient

        return ServeClient(self.host, self.port, timeout=TIMEOUT * 4)

    def stop(self) -> int:
        from repro.serve import ServeError

        try:
            with self.client() as client:
                client.shutdown()
        except ServeError:
            pass
        try:
            return self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -1


def _solve_in_process(path: str) -> Dict:
    from repro.smtlib import ScriptRunner, parse_script
    from repro.solver import SolverConfig

    with open(path) as handle:
        text = handle.read()
    script = parse_script(text)
    runner = ScriptRunner(config=SolverConfig(timeout=TIMEOUT))
    started = time.monotonic()
    runner.run_script(script, name=os.path.basename(path))
    return {
        "text": text,
        "expected": script.expected_status,
        "verdicts": list(runner.verdicts),
        "seconds": time.monotonic() - started,
    }


def _structured_unknowns_ok(response: Dict) -> bool:
    """Every unknown verdict has a ``; unknown: <reason>`` output line."""
    unknowns = sum(1 for verdict in response["verdicts"] if verdict == "unknown")
    reasons = sum(
        1 for line in response["output"] if line.startswith("; unknown:")
    )
    return reasons >= unknowns


def _run_identity(server: _ServerProc, baselines: Dict[str, Dict]) -> Dict:
    names = sorted(baselines)
    failures: List[str] = []
    server_only: List[str] = []
    local_only: List[str] = []
    unstructured: List[str] = []
    dropped: List[str] = []
    lock = threading.Lock()
    queue = list(names)

    def worker() -> None:
        with server.client() as client:
            while True:
                with lock:
                    if not queue:
                        return
                    name = queue.pop()
                base = baselines[name]
                try:
                    response = client.solve(base["text"], name=name, timeout=TIMEOUT)
                except Exception as error:  # noqa: BLE001 - a drop, report it
                    with lock:
                        dropped.append(f"{name}: {error}")
                    continue
                with lock:
                    if not response.get("ok"):
                        dropped.append(f"{name}: {response.get('error')}")
                        continue
                    got = response["verdicts"]
                    want = base["verdicts"]
                    if len(got) != len(want):
                        dropped.append(f"{name}: {len(got)} answers for {len(want)} checks")
                        continue
                    if not _structured_unknowns_ok(response):
                        unstructured.append(name)
                    expected = base["expected"]
                    for index, (local, remote) in enumerate(zip(want, got)):
                        both = {local, remote}
                        if both == {"sat", "unsat"}:
                            failures.append(
                                f"{name}#{index}: server {remote} vs local {local}"
                            )
                        elif remote in ("sat", "unsat") and expected in ("sat", "unsat") \
                                and remote != expected:
                            failures.append(
                                f"{name}#{index}: server {remote} vs status {expected}"
                            )
                        elif remote in ("sat", "unsat") and local == "unknown":
                            server_only.append(f"{name}#{index}")
                        elif local in ("sat", "unsat") and remote == "unknown":
                            local_only.append(f"{name}#{index}")

    threads = [threading.Thread(target=worker) for _ in range(IDENTITY_CONCURRENCY)]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {
        "files": len(names),
        "seconds": round(time.monotonic() - started, 3),
        "wrong_verdicts": len(failures),
        "wrong": failures,
        "dropped_responses": len(dropped),
        "dropped": dropped,
        "unstructured_unknowns": len(unstructured),
        "unstructured": unstructured,
        "server_only_decided": server_only,
        "local_only_decided": local_only,
    }


def _run_load(
    server: _ServerProc, slice_texts: List[str], levels, queries: int
) -> List[Dict]:
    results = []
    for concurrency in levels:
        latencies: List[float] = []
        errors: List[str] = []
        lock = threading.Lock()
        counter = iter(range(queries))

        def worker() -> None:
            with server.client() as client:
                while True:
                    with lock:
                        index = next(counter, None)
                    if index is None:
                        return
                    text = slice_texts[index % len(slice_texts)]
                    started = time.monotonic()
                    try:
                        response = client.solve(text, name=f"load-{index}", timeout=TIMEOUT)
                        elapsed = time.monotonic() - started
                        if not response.get("ok") or not response.get("verdicts"):
                            raise RuntimeError(response.get("error", "empty response"))
                    except Exception as error:  # noqa: BLE001
                        with lock:
                            errors.append(f"query {index}: {error}")
                        continue
                    with lock:
                        latencies.append(elapsed)

        threads = [threading.Thread(target=worker) for _ in range(concurrency)]
        phase_start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - phase_start
        latencies.sort()

        def _pct(fraction: float) -> float:
            if not latencies:
                return 0.0
            index = min(len(latencies) - 1, int(fraction * len(latencies)))
            return latencies[index]

        results.append({
            "concurrency": concurrency,
            "queries": queries,
            "answered": len(latencies),
            "dropped": len(errors),
            "errors": errors[:10],
            "wall_seconds": round(wall, 3),
            "throughput_qps": round(len(latencies) / wall, 2) if wall else 0.0,
            "p50_ms": round(_pct(0.50) * 1000, 1),
            "p99_ms": round(_pct(0.99) * 1000, 1),
            "mean_ms": round(statistics.fmean(latencies) * 1000, 1) if latencies else 0.0,
        })
        level = results[-1]
        print(
            f"  concurrency {concurrency:>2}: p50 {level['p50_ms']}ms  "
            f"p99 {level['p99_ms']}ms  {level['throughput_qps']} q/s  "
            f"({level['answered']}/{queries} answered)",
            flush=True,
        )
    return results


def run(quick: bool = False, output: Optional[str] = None, workers: int = 2) -> Dict:
    paths = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.smt2")))
    if not paths:
        raise SystemExit("no corpus files — run benchmarks/smtlib/generate.py first")
    if quick:
        # Stride-sample so the quick slice spans every corpus family (the
        # alphabetical prefix is the slowest family; a diverse slice keeps
        # the smoke fast and gives the load phase more than one fast file).
        stride = max(1, len(paths) // QUICK_IDENTITY_SLICE)
        identity_paths = paths[::stride][:QUICK_IDENTITY_SLICE]
    else:
        identity_paths = paths

    print(f"in-process baseline over {len(identity_paths)} corpus files…", flush=True)
    baselines: Dict[str, Dict] = {}
    for path in identity_paths:
        baselines[os.path.basename(path)] = _solve_in_process(path)
    baseline_seconds = sum(base["seconds"] for base in baselines.values())
    print(f"  {baseline_seconds:.1f}s in-process", flush=True)

    # The fast slice for the load replay is chosen from measured in-process
    # times, so the latency numbers are queueing + serve overhead, not a
    # handful of hard instances dominating every percentile.
    slice_texts = [
        base["text"]
        for base in baselines.values()
        if base["seconds"] <= FAST_SLICE_SECONDS and base["verdicts"]
    ]
    if not slice_texts:
        raise SystemExit("no corpus file fits the fast slice — corpus changed?")

    server = _ServerProc(workers=workers)
    print(
        f"server up on {server.host}:{server.port} (workers={workers})", flush=True
    )
    try:
        print(f"identity phase (concurrency {IDENTITY_CONCURRENCY})…", flush=True)
        identity = _run_identity(server, baselines)
        print(
            f"  wrong={identity['wrong_verdicts']} dropped={identity['dropped_responses']} "
            f"unstructured={identity['unstructured_unknowns']}",
            flush=True,
        )

        queries = QUERIES_PER_LEVEL_QUICK if quick else QUERIES_PER_LEVEL
        levels = CONCURRENCY_LEVELS
        print(
            f"load phase: {queries} queries × {len(levels)} levels over a "
            f"{len(slice_texts)}-file fast slice…",
            flush=True,
        )
        load = _run_load(server, slice_texts, levels, queries)

        with server.client() as client:
            server_stats = client.stats()["stats"]
    finally:
        exit_code = server.stop()
    print(f"server shutdown exit code: {exit_code}", flush=True)

    report = {
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "timeout": TIMEOUT,
        "corpus_files": len(identity_paths),
        "fast_slice_files": len(slice_texts),
        "fast_slice_cutoff_seconds": FAST_SLICE_SECONDS,
        "baseline_seconds": round(baseline_seconds, 1),
        "identity": identity,
        "load": load,
        "server_stats": server_stats,
        "shutdown_exit_code": exit_code,
    }

    gates = {
        "wrong_verdicts": identity["wrong_verdicts"] == 0,
        "dropped_responses": identity["dropped_responses"] == 0
        and all(level["dropped"] == 0 for level in load),
        "structured_unknowns": identity["unstructured_unknowns"] == 0,
        "clean_shutdown": exit_code == 0,
    }
    report["gates"] = gates
    report["passed"] = all(gates.values())

    path = output or DEFAULT_OUTPUT_PATH
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {path}", flush=True)
    if not report["passed"]:
        failed = [name for name, ok in gates.items() if not ok]
        print(f"GATES FAILED: {', '.join(failed)}", file=sys.stderr, flush=True)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke subset")
    parser.add_argument("--output", default=None, help="report path")
    parser.add_argument("--workers", type=int, default=2, help="server worker fleet size")
    args = parser.parse_args(argv)
    report = run(quick=args.quick, output=args.output, workers=args.workers)
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
