"""Table 1 reproduction: OOR / Unknown / Time / TimeAll per solver per set.

The paper's Table 1 compares Z3-Noodler-pos against Z3-Noodler, cvc5, Z3 and
OSTRICH on four benchmark sets.  This reproduction compares the
position-procedure solver (``repro-pos``) against the eager-reduction and
enumerative baselines on the synthetic analogues of those sets.  The expected
*shape*: ``repro-pos`` solves the position-hard set (the baselines do not)
and has the fewest OOR/unknown results overall.
"""

from conftest import write_artifact


def test_table1_aggregates(campaign, benchmark):
    table = benchmark(campaign.format_table)
    path = write_artifact("table1.txt", table + "\n")
    print("\n" + table)
    print(f"[table written to {path}]")

    rows = {(row.solver, row.benchmark): row for row in campaign.table_rows()}
    # No solver may ever contradict a known ground-truth status.
    assert all(row.wrong == 0 for row in rows.values()), "a solver produced a wrong verdict"

    ours_all = rows[("repro-pos", "all")]
    enum_all = rows[("enumerative", "all")]
    eager_all = rows[("eager-reduction", "all")]
    unsolved_ours = ours_all.oor + ours_all.unknown
    # The headline claim of Table 1: the position procedure leaves the fewest
    # instances unsolved.
    assert unsolved_ours <= enum_all.oor + enum_all.unknown
    assert unsolved_ours <= eager_all.oor + eager_all.unknown

    # Position-hard: the dedicated procedure dominates both baselines (it is
    # the only one able to refute the unsatisfiable instances).
    ours_hard = rows[("repro-pos", "position-hard")]
    enum_hard = rows[("enumerative", "position-hard")]
    eager_hard = rows[("eager-reduction", "position-hard")]
    solved = lambda row: row.instances - row.oor - row.unknown
    assert solved(ours_hard) >= solved(enum_hard)
    assert solved(ours_hard) > solved(eager_hard)
