"""Tests for the string-constraint AST, semantics and normal form."""

from repro.automata import Nfa
from repro.core.predicates import Disequality, NotContains, NotPrefixOf, NotSuffixOf, StrAt
from repro.lia import eq as lia_eq, ge as lia_ge
from repro.strings import (
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    StrAtAtom,
    StringVar,
    SuffixOf,
    WordEquation,
    lit,
    normalize,
    str_len,
    term,
)
from repro.strings.semantics import eval_atom, eval_problem, eval_term
from repro.lia import LinExpr


def test_term_construction_and_eval():
    t = term("x", lit("ab"), "y")
    assert eval_term(t, {"x": "c", "y": "d"}) == "cabd"


def test_eval_word_equation():
    atom = WordEquation(term("x"), term("y", lit("a")))
    assert eval_atom(atom, {"x": "ba", "y": "b"})
    assert not eval_atom(atom, {"x": "b", "y": "b"})
    negated = WordEquation(term("x"), term("y"), positive=False)
    assert eval_atom(negated, {"x": "a", "y": "b"})


def test_eval_prefix_suffix_contains():
    assert eval_atom(PrefixOf(term(lit("ab")), term("x")), {"x": "abc"}, alphabet="abc")
    assert not eval_atom(PrefixOf(term(lit("b")), term("x")), {"x": "abc"}, alphabet="abc")
    assert eval_atom(SuffixOf(term(lit("bc")), term("x")), {"x": "abc"}, alphabet="abc")
    assert eval_atom(Contains(term(lit("b")), term("x")), {"x": "abc"}, alphabet="abc")
    assert eval_atom(Contains(term(lit("d")), term("x"), positive=False), {"x": "abc"}, alphabet="abcd")


def test_eval_str_at_and_length():
    atom = StrAtAtom(StringVar("c"), term("x"), LinExpr.var("i"))
    assert eval_atom(atom, {"c": "b", "x": "ab"}, {"i": 1})
    assert not eval_atom(atom, {"c": "a", "x": "ab"}, {"i": 1})
    # Out-of-bounds index compares against the empty string.
    assert eval_atom(atom, {"c": "", "x": "ab"}, {"i": 7})
    length = LengthConstraint(lia_ge(str_len("x"), 2))
    assert eval_atom(length, {"x": "ab"})
    assert not eval_atom(length, {"x": "a"})


def test_eval_regex_membership():
    atom = RegexMembership("x", "(ab)*")
    assert eval_atom(atom, {"x": "abab"})
    assert not eval_atom(atom, {"x": "aba"})
    negated = RegexMembership("x", "(ab)*", positive=False)
    assert eval_atom(negated, {"x": "aba"})


def test_problem_variables():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(WordEquation(term("x"), term("y", lit("a"))))
    problem.add(StrAtAtom(StringVar("c"), term("x"), LinExpr.var("i")))
    assert set(problem.string_variables()) == {"x", "y", "c"}
    assert set(problem.integer_variables()) == {"i"}


# ----------------------------------------------------------------------
# Normal form (§2)
# ----------------------------------------------------------------------
def test_normalize_literals_become_fresh_variables():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(WordEquation(term("x"), term(lit("ab"), "y"), positive=False))
    normal_form = normalize(problem)
    assert len(normal_form.predicates) == 1
    diseq = normal_form.predicates[0]
    assert isinstance(diseq, Disequality)
    # The literal became a fresh variable with the singleton language.
    fresh = [name for name in diseq.rhs if name.startswith("_lit")]
    assert len(fresh) == 1
    assert normal_form.automata[fresh[0]].accepts("ab")
    assert not normal_form.automata[fresh[0]].accepts("a")


def test_normalize_positive_prefix_becomes_equation():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(PrefixOf(term("x"), term("y")))
    normal_form = normalize(problem)
    assert not normal_form.predicates
    assert len(normal_form.equations) == 1
    lhs, rhs = normal_form.equations[0]
    assert lhs == ("y",)
    assert rhs[0] == "x" and len(rhs) == 2  # y = x . fresh


def test_normalize_positive_contains_becomes_equation():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(Contains(term("n"), term("h")))
    normal_form = normalize(problem)
    assert len(normal_form.equations) == 1
    lhs, rhs = normal_form.equations[0]
    assert lhs == ("h",)
    assert len(rhs) == 3 and rhs[1] == "n"


def test_normalize_negated_predicates_become_position_constraints():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(PrefixOf(term("x"), term("y"), positive=False))
    problem.add(SuffixOf(term("x"), term("y"), positive=False))
    problem.add(Contains(term("x"), term("y"), positive=False))
    problem.add(StrAtAtom(StringVar("c"), term("y"), 0, positive=False))
    normal_form = normalize(problem)
    kinds = {type(p) for p in normal_form.predicates}
    assert kinds == {NotPrefixOf, NotSuffixOf, NotContains, StrAt}


def test_normalize_intersects_multiple_memberships():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(a|b)*a"))
    problem.add(RegexMembership("x", "a(a|b)*"))
    normal_form = normalize(problem)
    nfa = normal_form.automata["x"]
    assert nfa.accepts("aba")
    assert not nfa.accepts("ab")
    assert not nfa.accepts("ba")


def test_normalize_negated_membership_is_complemented():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*", positive=False))
    normal_form = normalize(problem)
    assert not normal_form.automata["x"].accepts("ab")
    assert normal_form.automata["x"].accepts("a")


def test_normalize_unconstrained_variable_gets_universal_language():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(WordEquation(term("x"), term("y"), positive=False))
    normal_form = normalize(problem)
    assert normal_form.automata["x"].accepts("abba")
    assert normal_form.automata["y"].accepts("")


def test_normalize_integer_constraints_collected():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(LengthConstraint(lia_eq(str_len("x"), 3)))
    problem.add(RegexMembership("x", "a*"))
    normal_form = normalize(problem)
    assert "@len.x" in normal_form.integer_formula.variables()
