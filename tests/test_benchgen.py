"""Tests for the benchmark generators, harness and NP-hardness reductions."""

from repro.benchgen import position_hard, run_campaign, sat_reductions, symbolic_execution
from repro.benchgen.harness import Campaign, RunRecord
from repro.benchgen.suite import benchmark_sets, solver_factories
from repro.solver import Status, brute_force_check
from repro.strings.semantics import eval_problem


def test_generators_are_deterministic():
    first = [(name, str(problem)) for name, problem, _ in symbolic_execution.biopython_like(5, seed=9)]
    second = [(name, str(problem)) for name, problem, _ in symbolic_execution.biopython_like(5, seed=9)]
    assert first == second


def test_generators_produce_position_constraints():
    from repro.strings.normal_form import normalize

    counted = 0
    for _, problem, _ in list(symbolic_execution.django_like(6)) + list(position_hard.generate(6)):
        if normalize(problem).predicates:
            counted += 1
    assert counted >= 8  # the overwhelming majority carry position constraints


def test_expected_labels_match_bruteforce_where_cheap():
    for name, problem, expected in list(symbolic_execution.biopython_like(6, seed=3)):
        if expected is None:
            continue
        oracle = brute_force_check(problem, max_length=3, timeout=20)
        if oracle.status is Status.SAT:
            assert expected == "sat", name
        # (bounded UNSAT cannot confirm "unsat" labels; skip those)


def test_position_hard_labels():
    instances = list(position_hard.commuting_disequalities(6, seed=5))
    assert any(expected == "unsat" for _, _, expected in instances)
    assert any(expected == "sat" for _, _, expected in instances)


def test_3sat_reduction_to_disequalities_matches_truth():
    clauses = [(1, 2, 3), (-1, -2, 3), (1, -3, 2)]
    truth = sat_reductions.sat_brute_force(3, clauses)
    problem = sat_reductions.three_sat_to_disequalities(3, clauses)
    oracle = brute_force_check(problem, max_length=1)
    assert (oracle.status is Status.SAT) == (truth is not None)


def test_3sat_unsat_reduction():
    # (x) ∧ (¬x) as 3-SAT clauses padded with the same literal.
    clauses = [(1, 1, 1), (-1, -1, -1)]
    assert sat_reductions.sat_brute_force(1, clauses) is None
    problem = sat_reductions.three_sat_to_disequalities(1, clauses)
    assert brute_force_check(problem, max_length=1).status is Status.UNSAT


def test_3sat_to_not_contains_semantics():
    clauses = [(1, -2, 2)]
    problem = sat_reductions.three_sat_to_not_contains(2, clauses)
    # A model of the propositional formula translated to strings satisfies it.
    strings = {"p1": "1", "n1": "0", "p2": "1", "n2": "0"}
    assert eval_problem(problem, strings)
    # Complementarity violations are rejected.
    bad = {"p1": "1", "n1": "1", "p2": "1", "n2": "0"}
    assert not eval_problem(problem, bad)


def test_harness_aggregation_and_rendering():
    campaign = Campaign(timeout=5.0)
    campaign.add(RunRecord("set", "i1", "A", Status.SAT, 0.5, "sat"))
    campaign.add(RunRecord("set", "i2", "A", Status.TIMEOUT, 5.0))
    campaign.add(RunRecord("set", "i1", "B", Status.UNKNOWN, 0.1))
    campaign.add(RunRecord("set", "i2", "B", Status.UNSAT, 1.0))
    rows = {(row.solver, row.benchmark): row for row in campaign.table_rows()}
    assert rows[("A", "set")].oor == 1
    assert rows[("B", "set")].unknown == 1
    assert rows[("A", "all")].time_all == 0.5 + 5.0
    table = campaign.format_table()
    assert "OOR" in table and "A" in table
    points = campaign.scatter_points("A", "B")
    assert len(points) == 2
    cactus = campaign.cactus_series()
    assert cactus["A"] == [0.5]
    assert "budget" in campaign.format_cactus()
    assert "benchmark,instance" in campaign.to_csv().splitlines()[0]


def test_mini_campaign_runs_end_to_end():
    sets = {"mini": list(symbolic_execution.django_like(2, seed=1))}
    campaign = run_campaign(sets, solver_factories(timeout=6.0), timeout=6.0)
    assert len(campaign.records) == 2 * len(solver_factories())
    assert all(record.agrees_with_expectation for record in campaign.records)
