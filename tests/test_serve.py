"""End-to-end tests of the portfolio solver server (:mod:`repro.serve`).

One real server subprocess (spawned workers, warm caches, fault injection
enabled) is shared by the module; each test drives it through the public
surface — the JSON-lines protocol, the raw-script mode, the ``ServeClient``
and the ``python -m repro.smtlib --server`` CLI — and checks the promises
the serve layer makes: verdicts identical to in-process solving, structured
unknowns, dedup of identical in-flight jobs, cancelled portfolio losers,
warm-cache hits, and a clean shutdown with every worker reaped.
"""

import glob
import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from helpers import ServeServerProc
from repro.serve import ServeClient, ServeError, parse_host_port, strategy_names
from repro.serve.portfolio import STRATEGIES, config_for, pick_winner
from repro.serve.protocol import (
    JobOutcome,
    count_check_sats,
    dedup_key,
    synthetic_outcome,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS = sorted(glob.glob(os.path.join(REPO, "benchmarks", "smtlib", "*.smt2")))

SAT_SCRIPT = '(set-logic QF_S)(declare-const x String)(assert (= x "ab"))(check-sat)'
UNSAT_SCRIPT = (
    '(set-logic QF_S)(declare-const x String)'
    '(assert (= x "a"))(assert (= x "b"))(check-sat)'
)
SLOW_SCRIPT = (
    "(set-logic QF_S)"
    "(declare-const x String)(declare-const y String)"
    '(assert (= (str.++ x y) (str.++ y x "ab")))'
    "(check-sat)"
)


@pytest.fixture(scope="module")
def server():
    proc = ServeServerProc(
        "--workers", "2",
        "--warm", os.path.join(REPO, "benchmarks", "smtlib", "*.smt2"),
        "--warm-limit", "256",
        "--enable-fault-injection",
        "--timeout", "30",
    )
    yield proc
    proc.kill()


# ----------------------------------------------------------------------
# Protocol units (no server needed)
# ----------------------------------------------------------------------
def test_parse_host_port():
    assert parse_host_port("127.0.0.1:7000") == ("127.0.0.1", 7000)
    assert parse_host_port("localhost") == ("localhost", 7411)
    assert parse_host_port(":9000") == ("127.0.0.1", 9000)
    with pytest.raises(ServeError):
        parse_host_port("host:notaport")


def test_strategy_names_validation():
    assert strategy_names(None) == ("witness", "encoding")
    assert strategy_names(["frugal"]) == ("frugal",)
    with pytest.raises(ValueError):
        strategy_names(["nope"])
    with pytest.raises(ValueError):
        strategy_names(["witness", "witness"])


def test_strategies_are_distinct_configs():
    configs = {
        name: config_for(name, timeout=10.0, max_steps=None) for name in STRATEGIES
    }
    # The portfolio only makes sense if the racers explore different paths.
    assert configs["witness"].distinct_shortcut != configs["encoding"].distinct_shortcut
    assert configs["witness"].lia_cuts != configs["frugal"].lia_cuts


def test_dedup_key_semantics():
    key = dedup_key(SAT_SCRIPT, 30.0)
    assert key is not None
    # Whitespace/comment differences collapse to the same canonical key.
    spaced = SAT_SCRIPT.replace(")(", ")\n ; noise\n(")
    assert dedup_key(spaced, 30.0) == key
    # A different timeout is a different job.
    assert dedup_key(SAT_SCRIPT, 5.0) != key
    # Model-producing and multi-check scripts never share responses.
    assert dedup_key(SAT_SCRIPT + "(get-model)", 30.0) is None
    assert dedup_key(SAT_SCRIPT + "(check-sat)", 30.0) is None
    assert dedup_key("(push 1)" + SAT_SCRIPT, 30.0) is None


def test_pick_winner_ranking():
    undecided = synthetic_outcome("witness", 1, "timeout@solve")
    decided = JobOutcome(strategy="encoding", verdicts=["sat"], output=["sat"])
    errored = JobOutcome(strategy="frugal", error="boom")
    assert pick_winner([undecided, decided, errored]) is decided
    assert pick_winner([errored, undecided]) is undecided
    assert pick_winner([]) is None
    assert count_check_sats(SAT_SCRIPT + "(check-sat)") == 2


# ----------------------------------------------------------------------
# The live server
# ----------------------------------------------------------------------
def test_ping_and_stats_shape(server):
    with server.client() as client:
        pong = client.ping()
        assert pong["ok"] and pong["pong"]
        stats = client.stats()["stats"]
        assert stats["workers"] == 2
        assert stats["warm_payload"] > 0
        for key in ("jobs_total", "portfolio_cancelled", "worker_restarts"):
            assert key in stats


def test_solve_sat_and_unsat(server):
    with server.client() as client:
        sat = client.solve(SAT_SCRIPT, name="sat")
        assert sat["ok"] and sat["verdicts"] == ["sat"]
        assert sat["output"] == ["sat"]
        assert sat["strategy"] in STRATEGIES
        unsat = client.solve(UNSAT_SCRIPT, name="unsat")
        assert unsat["ok"] and unsat["verdicts"] == ["unsat"]


def test_structured_unknown_on_tiny_timeout(server):
    with server.client() as client:
        response = client.solve(SLOW_SCRIPT, name="tiny", timeout=0.05)
        assert response["ok"]
        assert response["verdicts"] == ["unknown"]
        # The reason line names a structured kind, not a bare "unknown".
        reasons = [line for line in response["output"] if line.startswith("; unknown:")]
        assert len(reasons) == 1
        assert "timeout@" in reasons[0] or "interrupted@" in reasons[0]


def test_get_model_round_trip(server):
    with server.client() as client:
        response = client.solve(SAT_SCRIPT + "(get-model)", name="model")
        assert response["verdicts"] == ["sat"]
        body = "\n".join(response["output"])
        assert "define-fun" in body and '"ab"' in body


def test_bad_requests_are_answered(server):
    with server.client() as client:
        assert client.request({"op": "nope"})["ok"] is False
        assert client.solve("")["ok"] is False
        assert client.solve(SAT_SCRIPT, timeout=-1)["ok"] is False
        bad = client.request({"op": "solve", "script": SAT_SCRIPT, "portfolio": ["zzz"]})
        assert bad["ok"] is False and "zzz" in bad["error"]
        # Malformed JSON still yields a structured error response.
        server_sock = socket.create_connection((server.host, server.port), timeout=30)
        server_sock.sendall(b'{"op": "solve", "script": \n')
        line = server_sock.makefile("rb").readline()
        server_sock.close()
        assert json.loads(line)["ok"] is False


def test_raw_mode_socket(server):
    raw = socket.create_connection((server.host, server.port), timeout=120)
    raw.sendall(UNSAT_SCRIPT.encode())
    raw.shutdown(socket.SHUT_WR)
    data = b""
    while True:
        chunk = raw.recv(65536)
        if not chunk:
            break
        data += chunk
    raw.close()
    assert data.decode().strip() == "unsat"


def test_corpus_file_verdicts_and_warm_hits(server):
    with open(CORPUS[0]) as handle:
        text = handle.read()
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    local = subprocess.run(
        [sys.executable, "-m", "repro.smtlib", CORPUS[0]],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    with server.client() as client:
        response = client.solve(text, name=CORPUS[0])
    assert response["ok"]
    assert response["output"] == local.stdout.splitlines()
    # The warm payload seeded this worker: normalisation re-used interned
    # automata instead of rebuilding them.
    assert response["stats"]["serve_warm_seeded"] > 0
    assert response["stats"]["automata_interning_warm_hits"] > 0


def test_dedup_of_identical_inflight_jobs(server):
    with open(CORPUS[0]) as handle:
        text = handle.read()
    with server.client() as client:
        before = client.stats()["stats"]["jobs_deduped"]
    results = {}

    def submit(tag):
        with server.client() as client:
            results[tag] = client.solve(text, name=f"dup-{tag}", timeout=25)

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    verdicts = {tuple(results[i]["verdicts"]) for i in range(4)}
    assert len(verdicts) == 1  # every caller got the shared answer
    with server.client() as client:
        after = client.stats()["stats"]["jobs_deduped"]
    assert after > before
    assert any(results[i].get("deduped") for i in range(4))


def test_portfolio_cancels_losers(server):
    # Deterministically slow down one strategy: 'witness' sleeps 1.5s at its
    # first normalize entry while 'encoding' answers normally.  The winner's
    # response comes back immediately; the loser wakes with the cancel flag
    # already set, observes it at its next poll, and lands as a cancelled
    # run in the server stats.
    with server.client() as client:
        before = client.stats()["stats"]["portfolio_cancelled"]
        response = client.solve(
            UNSAT_SCRIPT,
            name="race",
            timeout=25,
            inject=[{
                "strategy": "witness",
                "stage": "enter:normalize",
                "at": 1,
                "action": "delay",
                "delay": 1.5,
            }],
        )
        assert response["ok"] and response["verdicts"] == ["unsat"]
        assert response["strategy"] == "encoding"
        deadline = time.time() + 15
        after = before
        while time.time() < deadline:
            after = client.stats()["stats"]["portfolio_cancelled"]
            if after > before:
                break
            time.sleep(0.2)
    assert after > before, "the delayed witness run never reported its cancellation"


def test_single_strategy_portfolio_override(server):
    with server.client() as client:
        response = client.solve(SAT_SCRIPT, name="solo", portfolio=["frugal"])
        assert response["ok"] and response["verdicts"] == ["sat"]
        assert response["strategy"] == "frugal"
        assert response["portfolio"]["strategies"] == ["frugal"]


def test_smtlib_cli_server_mode_matches_local(server):
    sample = CORPUS[:3]
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    local = subprocess.run(
        [sys.executable, "-m", "repro.smtlib", *sample],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    remote = subprocess.run(
        [sys.executable, "-m", "repro.smtlib",
         "--server", f"{server.host}:{server.port}", *sample],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert remote.returncode == local.returncode
    assert remote.stdout == local.stdout


def test_smtlib_cli_server_mode_connection_refused():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    result = subprocess.run(
        [sys.executable, "-m", "repro.smtlib", "--server", "127.0.0.1:1", CORPUS[0]],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert result.returncode == 1
    assert "cannot connect" in result.stderr


def test_normalization_cache_shared_across_jobs():
    # A single worker so consecutive jobs land in the same process: the
    # second job must hit the first job's NormalizationCache entries (the
    # per-process cache is shared across jobs and warm-marked between
    # them), which surfaces as normalization_warm_hits in the stats.
    script = (
        "(set-logic QF_S)(declare-const x String)"
        '(assert (str.in_re x (re.++ (str.to_re "ab") (re.* (str.to_re "c")))))'
        "(assert (= (str.len x) 4))(check-sat)"
    )
    # One strategy: with a portfolio, job 1's second strategy run would
    # already score warm hits and blur the cross-job signal.
    proc = ServeServerProc("--workers", "1", "--portfolio", "encoding")
    try:
        with proc.client() as client:
            first = client.solve(script, name="warmup")
            # A distinct name defeats the server's result dedup cache, so
            # the second run really executes in the worker.
            second = client.solve(script + "(check-sat)", name="rerun")
        assert first["ok"] and second["ok"]
        assert first["stats"].get("normalization_warm_hits", 0) == 0
        assert second["stats"]["normalization_warm_hits"] > 0
    finally:
        proc.kill()


def test_clean_shutdown_reaps_workers():
    # A dedicated short-lived server: shutdown must exit 0 with no
    # leftover children (ProcessPoolExecutor.shutdown(wait=True) joins
    # them before the loop exits).
    proc = ServeServerProc("--workers", "2")
    with proc.client() as client:
        assert client.solve(SAT_SCRIPT)["verdicts"] == ["sat"]
    code = proc.stop()
    assert code == 0
