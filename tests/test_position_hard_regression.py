"""Regressions on the position-hard commuting/repetition disequalities.

* ``position-hard-comm-0`` / ``position-hard-comm-3`` are the ``(abc)*`` and
  ``a*`` commuting disequalities whose refutation needs genuine cutting
  planes: sound branch-and-bound alone diverges on their pure-inequality
  mod-k conflicts (they regressed to ``unknown`` when the unsound conflict
  cores of the seed were fixed).  They must report ``unsat`` — and do so
  well inside the configured timeout.
* ``position-hard-rep-1`` is the soundness case of the substitution-
  provenance fix: the seed answered ``unsat`` although the instance is
  satisfiable.  It must stay SAT with a verifying model.
"""

import pytest

from repro.benchgen import position_hard
from repro.solver import PositionSolver, SolverConfig
from repro.solver.result import Status
from repro.strings.semantics import eval_problem

_COMM = {name: (problem, expected)
         for name, problem, expected in position_hard.commuting_disequalities(4, seed=11)}
_REP = {name: (problem, expected)
        for name, problem, expected in position_hard.repetition_disequalities(2, seed=12)}


@pytest.mark.parametrize("name", ["position-hard-comm-0", "position-hard-comm-3"])
def test_commuting_disequalities_are_refuted(name):
    problem, expected = _COMM[name]
    assert expected == "unsat"
    result = PositionSolver(SolverConfig(timeout=25.0)).check(problem)
    assert result.status is Status.UNSAT, (
        f"{name} must be refuted by the cutting-plane integer core, "
        f"got {result.status} ({result.reason})"
    )


def test_repetition_disequality_rep1_stays_sound():
    problem, _expected = _REP["position-hard-rep-1"]
    result = PositionSolver(SolverConfig(timeout=25.0)).check(problem)
    assert result.status is Status.SAT
    assert eval_problem(problem, result.model.strings, result.model.integers)


def test_satisfiable_commuting_disequalities_still_sat():
    for name in ("position-hard-comm-1", "position-hard-comm-2"):
        problem, expected = _COMM[name]
        assert expected == "sat"
        result = PositionSolver(SolverConfig(timeout=25.0)).check(problem)
        assert result.status is Status.SAT
        assert eval_problem(problem, result.model.strings, result.model.integers)
