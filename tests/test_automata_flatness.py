"""Tests for flatness detection and related helpers (paper §2 examples)."""

from repro.automata import Nfa, compile_regex, is_flat, minimize, canonical_signature
from repro.automata.flatness import flat_witness, strongly_connected_components
from repro.automata.enumeration import count_words_of_length, is_finite, shortest_word


def test_paper_flat_example():
    # (ab)*c((ab)* + (ba)*) is flat.
    nfa = compile_regex("(ab)*c((ab)*|(ba)*)", alphabet="abc")
    assert is_flat(nfa)
    assert flat_witness(nfa) == "flat"


def test_paper_nonflat_example():
    # (a+b)* is not flat: a single state with two self-loops.
    nfa = compile_regex("(a|b)*", alphabet="ab")
    assert not is_flat(nfa)
    assert "not flat" in flat_witness(nfa)


def test_finite_languages_are_flat():
    assert is_flat(Nfa.from_words(["abc", "a", ""]))


def test_single_loop_is_flat():
    assert is_flat(compile_regex("a*", alphabet="ab"))
    assert is_flat(compile_regex("(abc)*", alphabet="abc"))


def test_nested_loops_not_flat():
    # (a*b)* has nested loops after trimming.
    nfa = compile_regex("(a*b)*", alphabet="ab")
    assert not is_flat(nfa)


def test_scc_decomposition():
    nfa = compile_regex("(ab)*c", alphabet="abc")
    components = strongly_connected_components(nfa.trim())
    sizes = sorted(len(c) for c in components)
    assert sizes[-1] == 2  # the (ab) loop


def test_is_finite():
    assert is_finite(Nfa.from_words(["a", "bb"]))
    assert not is_finite(compile_regex("a*", alphabet="a"))


def test_shortest_word():
    assert shortest_word(compile_regex("aaa|aa", alphabet="a")) == "aa"
    assert shortest_word(Nfa.empty_language()) is None
    assert shortest_word(compile_regex("a*", alphabet="a")) == ""


def test_count_words_of_length():
    nfa = compile_regex("(a|b)*", alphabet="ab")
    assert count_words_of_length(nfa, 3) == 8
    assert count_words_of_length(compile_regex("(ab)*", alphabet="ab"), 4) == 1
    assert count_words_of_length(compile_regex("(ab)*", alphabet="ab"), 3) == 0


def test_minimize_produces_equivalent_small_dfa():
    nfa = compile_regex("(a|b)(a|b)", alphabet="ab")
    minimal = minimize(nfa, "ab")
    for word in ["", "a", "ab", "ba", "bb", "aab"]:
        assert nfa.accepts(word) == minimal.accepts(word)
    assert len(minimal.states) <= 3


def test_canonical_signature_equates_equivalent_automata():
    left = compile_regex("a|a", alphabet="ab")
    right = compile_regex("a", alphabet="ab")
    other = compile_regex("b", alphabet="ab")
    assert canonical_signature(left, "ab") == canonical_signature(right, "ab")
    assert canonical_signature(left, "ab") != canonical_signature(other, "ab")
