"""Exhaustive SMT-LIB 2.6 edge table for the extended string functions.

``str.substr`` / ``str.indexof`` / ``str.replace`` are re-implemented
here *directly from the standard's definitions* (a deliberately
independent second implementation, transcribing the quantified axioms
case by case) and compared against :mod:`repro.strings.semantics` — the
oracle every model verification, ground truth and fuzz differential in
the repo ultimately rests on — over **all** strings of length ≤ 3 on a
2-letter alphabet, with offsets and lengths swept through the negative /
zero / in-range / past-the-end regions.  The same table is then pushed
through :func:`eval_atom` so the atom evaluator agrees with the
function-level semantics.
"""

from itertools import product

from repro.lia import LinExpr
from repro.strings.ast import IndexOfAtom, ReplaceAtom, SubstrAtom, lit, term
from repro.strings.semantics import eval_atom, str_indexof, str_replace, str_substr

WORDS = [""] + [
    "".join(w) for n in (1, 2, 3) for w in product("ab", repeat=n)
]  # 15 strings
OFFSETS = range(-2, 6)
LENGTHS = range(-2, 6)


# -- the independent spec transcriptions --------------------------------
def spec_substr(s: str, i: int, n: int) -> str:
    """SMT-LIB 2.6: the empty string unless ``0 <= i < |s|`` and ``n > 0``;
    otherwise the unique maximal-length prefix of the suffix at ``i`` of
    length at most ``n``."""
    if i < 0 or i >= len(s) or n <= 0:
        return ""
    return s[i : i + min(n, len(s) - i)]


def spec_indexof(s: str, t: str, i: int) -> int:
    """SMT-LIB 2.6: -1 when ``i`` is out of ``[0, |s|]`` or no occurrence
    of ``t`` starts at a position ``>= i``; otherwise the least such
    position (an empty needle occurs at every position, including |s|)."""
    if i < 0 or i > len(s):
        return -1
    for position in range(i, len(s) + 1):
        if s[position : position + len(t)] == t and position + len(t) <= len(s):
            return position
    return -1


def spec_replace(s: str, t: str, r: str) -> str:
    """SMT-LIB 2.6: ``s`` with the *first* occurrence of ``t`` replaced by
    ``r``; ``s`` itself when ``t`` does not occur; an empty ``t`` occurs
    first at position 0, so the result is ``r + s``."""
    if t == "":
        return r + s
    position = s.find(t)
    if position < 0:
        return s
    return s[:position] + r + s[position + len(t) :]


# -- function-level agreement -------------------------------------------
def test_substr_edge_table():
    for s in WORDS:
        for i in OFFSETS:
            for n in LENGTHS:
                assert str_substr(s, i, n) == spec_substr(s, i, n), (s, i, n)


def test_indexof_edge_table():
    for s in WORDS:
        for t in WORDS:
            for i in OFFSETS:
                assert str_indexof(s, t, i) == spec_indexof(s, t, i), (s, t, i)


def test_replace_edge_table():
    for s in WORDS:
        for t in WORDS:
            for r in WORDS:
                assert str_replace(s, t, r) == spec_replace(s, t, r), (s, t, r)


# -- named corner rows of the standard's table --------------------------
def test_edge_rows_named():
    # substr: negative offset, offset == |s|, zero/negative length
    assert str_substr("ab", -1, 2) == ""
    assert str_substr("ab", 2, 1) == ""
    assert str_substr("ab", 0, 0) == ""
    assert str_substr("ab", 1, 5) == "b"
    # indexof: empty needle at every offset incl. |s|; offset out of range
    assert str_indexof("ab", "", 0) == 0
    assert str_indexof("ab", "", 2) == 2
    assert str_indexof("ab", "", 3) == -1
    assert str_indexof("ab", "b", -1) == -1
    assert str_indexof("", "", 0) == 0
    # replace: empty needle prepends; absent needle is the identity
    assert str_replace("ab", "", "b") == "bab"
    assert str_replace("ab", "ba", "x") == "ab"
    assert str_replace("", "", "r") == "r"


# -- atom-level agreement -----------------------------------------------
def test_substr_atom_matches_function_semantics():
    for s in WORDS:
        for i in OFFSETS:
            for n in LENGTHS:
                expected = spec_substr(s, i, n)
                atom = SubstrAtom(
                    term("t"), term(lit(s)), LinExpr.constant(i), LinExpr.constant(n)
                )
                assert eval_atom(atom, {"t": expected}), (s, i, n)
                for wrong in WORDS:
                    if wrong != expected and len(wrong) <= 2:
                        assert not eval_atom(atom, {"t": wrong}), (s, i, n, wrong)
                        break


def test_indexof_atom_matches_function_semantics():
    for s in WORDS:
        for t in WORDS[:7]:  # "", "a", "b", "aa", "ab", "ba", "bb"
            for i in OFFSETS:
                expected = spec_indexof(s, t, i)
                atom = IndexOfAtom(
                    LinExpr.constant(expected),
                    term(lit(s)),
                    term(lit(t)),
                    LinExpr.constant(i),
                )
                assert eval_atom(atom, {}), (s, t, i)
                wrong_atom = IndexOfAtom(
                    LinExpr.constant(expected + 1),
                    term(lit(s)),
                    term(lit(t)),
                    LinExpr.constant(i),
                )
                assert not eval_atom(wrong_atom, {}), (s, t, i)


def test_replace_atom_matches_function_semantics():
    for s in WORDS:
        for t in WORDS[:7]:
            for r in ("", "a", "ba"):
                expected = spec_replace(s, t, r)
                atom = ReplaceAtom(
                    term("out"), term(lit(s)), term(lit(t)), term(lit(r))
                )
                assert eval_atom(atom, {"out": expected}), (s, t, r)
                assert not eval_atom(atom, {"out": expected + "ab"}), (s, t, r)
