"""Seed stability of every benchgen generator: same seed → byte-identical
instances and corpus files, across processes and hash seeds.

This is the dynamic counterpart of the static analyzer's determinism rule
(no clock reads, only ``random.Random(seed)``): the committed SMT-LIB
corpus is regenerated from the suite, the fuzzer replays failures by
seed, and the perf bench compares instance-by-instance against a
baseline — all three silently break if a generator's output depends on
``PYTHONHASHSEED``, set iteration order, or global RNG state.
"""

import os
import subprocess
import sys

from repro.benchgen import pipelines, position_hard, symbolic_execution
from repro.smtlib.printer import problem_to_smtlib

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

GENERATORS = {
    "biopython-like": lambda: symbolic_execution.biopython_like(6, seed=7),
    "django-like": lambda: symbolic_execution.django_like(6, seed=8),
    "thefuck-like": lambda: symbolic_execution.thefuck_like(5, seed=9),
    "position-hard": lambda: position_hard.generate(6, seed=10),
    "pipeline": lambda: pipelines.generate(6, seed=11),
    "pipeline-gaps": lambda: pipelines.generate(6, seed=11, include_gaps=True),
}


def _fingerprint(instances):
    return [
        (name, expected, problem_to_smtlib(problem, status=expected))
        for name, problem, expected in instances
    ]


def test_every_generator_is_seed_stable_in_process():
    for name, make in GENERATORS.items():
        assert _fingerprint(make()) == _fingerprint(make()), name


def test_different_seeds_differ():
    a = _fingerprint(pipelines.generate(6, seed=11))
    b = _fingerprint(pipelines.generate(6, seed=12))
    assert a != b


_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.benchgen.suite import benchmark_sets
from repro.smtlib.printer import problem_to_smtlib
for set_name, instances in sorted(benchmark_sets(scale=1, seed=7).items()):
    for name, problem, expected in instances:
        sys.stdout.write(f"=== {{set_name}}/{{name}} [{{expected}}]\\n")
        sys.stdout.write(problem_to_smtlib(problem, status=expected))
"""


def _suite_dump(hashseed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    return subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT.format(src=SRC)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    ).stdout


def test_whole_suite_is_hashseed_stable_across_processes():
    """The strongest form: two fresh interpreters with different
    ``PYTHONHASHSEED`` values must print the whole suite byte-identically
    (set/dict iteration order may not leak into any generator)."""
    dump_a = _suite_dump("0")
    dump_b = _suite_dump("1")
    assert dump_a, "suite dump came back empty"
    assert dump_a == dump_b


def test_committed_corpus_matches_regeneration(tmp_path):
    """`generate.py` into a scratch directory reproduces the committed
    ``<set>__*.smt2`` files byte-for-byte (the corpus cannot drift from
    the generators without being regenerated deliberately)."""
    repo_root = os.path.dirname(SRC)
    corpus_dir = os.path.join(repo_root, "benchmarks", "smtlib")
    sys.path.insert(0, corpus_dir)
    try:
        import generate as corpus_generate
    finally:
        sys.path.remove(corpus_dir)
    corpus_generate.generate(str(tmp_path))
    fresh = sorted(p for p in os.listdir(tmp_path) if p.endswith(".smt2"))
    committed = sorted(p for p in os.listdir(corpus_dir) if p.endswith(".smt2"))
    assert fresh == committed
    for filename in fresh:
        with open(os.path.join(tmp_path, filename)) as handle:
            fresh_text = handle.read()
        with open(os.path.join(corpus_dir, filename)) as handle:
            committed_text = handle.read()
        assert fresh_text == committed_text, f"{filename} drifted from its generator"
