"""Tests for the incremental DPLL(T) core (push/pop, watched literals).

The key property: any ``push`` / ``add_assertion`` / ``check`` / ``pop``
sequence must report exactly the verdicts a from-scratch ``LiaSolver.check``
gives on the conjunction of the assertions active at that moment.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.lia import (
    LiaConfig,
    LiaSolver,
    LiaStatus,
    check_model,
    conj,
    disj,
    eq,
    ge,
    le,
    ne,
    var,
)
from repro.lia.sat import DpllSolver
from repro.lia.cnf import CnfBuilder, to_cnf
from repro.lia.simplex import Constraint, Simplex
from repro.lia.terms import LinExpr


# ----------------------------------------------------------------------
# Incremental vs. from-scratch equivalence
# ----------------------------------------------------------------------
def _atom(spec):
    a, b, c, rel = spec
    lhs = a * var("x") + b * var("y")
    if rel == "<=":
        return le(lhs, c)
    if rel == ">=":
        return ge(lhs, c)
    if rel == "==":
        return eq(lhs, c)
    return ne(lhs, c)


_atom_spec = st.tuples(
    st.integers(min_value=-2, max_value=2),
    st.integers(min_value=-2, max_value=2),
    st.integers(min_value=-4, max_value=4),
    st.sampled_from(["<=", ">=", "==", "!="]),
)

#: a script step: push, pop, or assert a small formula
_step = st.one_of(
    st.just(("push",)),
    st.just(("pop",)),
    st.tuples(st.just("assert"), st.lists(_atom_spec, min_size=1, max_size=3)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(_step, min_size=1, max_size=8))
def test_push_pop_check_matches_from_scratch(steps):
    """Incremental verdicts equal one-shot verdicts on the active stack."""
    bounds = [ge(var("x"), -3), le(var("x"), 3), ge(var("y"), -3), le(var("y"), 3)]
    solver = LiaSolver()
    solver.add_assertion(conj(bounds))
    stack = [[conj(bounds)]]

    for step in steps:
        if step[0] == "push":
            solver.push()
            stack.append([])
        elif step[0] == "pop":
            if len(stack) == 1:
                continue
            solver.pop()
            stack.pop()
        else:
            formula = conj([_atom(spec) for spec in step[1]])
            solver.add_assertion(formula)
            stack[-1].append(formula)

        incremental = solver.check()
        active = conj([f for frame in stack for f in frame])
        reference = LiaSolver().check(active)
        assert incremental.status == reference.status, (
            f"incremental {incremental.status} != scratch {reference.status} "
            f"for {active!r}"
        )
        if incremental.status is LiaStatus.SAT:
            assert check_model(active, incremental.model)


def test_incremental_lemma_loop_keeps_state():
    """MBQI-style usage: assert once, add lemmas, re-check repeatedly."""
    x, y = var("x"), var("y")
    solver = LiaSolver()
    solver.add_assertion(conj([ge(x, 0), le(x, 10), ge(y, 0), le(y, 10)]))
    seen = set()
    for _round in range(12):
        result = solver.check()
        if result.status is not LiaStatus.SAT:
            break
        point = (result.model["x"], result.model["y"])
        assert point not in seen, "blocking lemma was not retained"
        seen.add(point)
        solver.add_assertion(ne(x, point[0]) | ne(y, point[1]))
    else:
        return  # still SAT after 12 rounds: fine, 121 points exist
    assert len(seen) >= 1


def test_pop_restores_satisfiability():
    x = var("x")
    solver = LiaSolver()
    solver.add_assertion(ge(x, 5))
    assert solver.check().status is LiaStatus.SAT
    solver.push()
    solver.add_assertion(le(x, 4))
    assert solver.check().status is LiaStatus.UNSAT
    solver.pop()
    result = solver.check()
    assert result.status is LiaStatus.SAT
    assert result.model["x"] >= 5


def test_scoped_check_formula_with_assertions():
    x = var("x")
    solver = LiaSolver()
    solver.add_assertion(ge(x, 0))
    assert solver.check(le(x, -1)).status is LiaStatus.UNSAT
    # the scoped formula must not leak into the stack
    assert solver.check().status is LiaStatus.SAT


def test_trivially_false_assertion_level():
    x = var("x")
    solver = LiaSolver()
    solver.add_assertion(ge(x, 0))
    solver.push()
    solver.add_assertion(conj([ge(x, 1), le(x, 0)]))
    assert solver.check().status is LiaStatus.UNSAT
    solver.pop()
    assert solver.check().status is LiaStatus.SAT


# ----------------------------------------------------------------------
# Watched-literal SAT engine
# ----------------------------------------------------------------------
def test_dpll_incremental_clause_addition():
    solver = DpllSolver(num_vars=3, clauses=[(1, 2), (-1, 3)])
    verdict, model = solver.solve()
    assert verdict == "sat"
    solver.add_clause((-2,))
    verdict, model = solver.solve()
    assert verdict == "sat"
    assert model[1] and not model[2] and model[3]
    solver.add_clause((-3,))
    verdict, _ = solver.solve()
    assert verdict == "unsat"


def test_dpll_remove_unit_restores_sat():
    solver = DpllSolver(num_vars=2, clauses=[(1, 2)])
    solver.add_clause((-1,))
    solver.add_clause((-2,))
    assert solver.solve()[0] == "unsat"
    solver.remove_unit(-2)
    verdict, model = solver.solve()
    assert verdict == "sat"
    assert model[2] and not model[1]


def test_dpll_learned_clauses_survive_restarts():
    calls = []

    def theory(true_atoms, final):
        if final and frozenset(true_atoms) == frozenset({1, 2}):
            calls.append(set(true_atoms))
            return (-1, -2)
        return None

    solver = DpllSolver(
        num_vars=2,
        clauses=[(1,), (2, -2)],
        theory_atoms={1, 2},
        theory_callback=theory,
    )
    assert solver.solve()[0] == "sat"
    first = len(calls)
    assert solver.solve()[0] == "sat"
    # the blocking clause was retained: the theory is not asked again
    assert len(calls) == first


# ----------------------------------------------------------------------
# Simplex push/pop
# ----------------------------------------------------------------------
def test_simplex_push_pop_bounds():
    simplex = Simplex()
    simplex.add_constraint(Constraint(LinExpr({"x": 1}, -10), "<=", tag="ub"))
    assert simplex.check().feasible
    simplex.push()
    simplex.add_constraint(Constraint(LinExpr({"x": 1}, -20), ">=", tag="lb"))
    assert not simplex.check().feasible
    simplex.pop()
    assert simplex.check().feasible
    # rows and the slack cache survive pops; bounds do not
    simplex.push()
    simplex.add_constraint(Constraint(LinExpr({"x": 1, "y": 1}, -5), ">=", tag="sum"))
    assert simplex.check().feasible
    simplex.pop()
    model = simplex.check().model
    assert model["x"] <= Fraction(10)


def test_simplex_prepare_assert_bound_roundtrip():
    simplex = Simplex()
    handle = simplex.prepare(Constraint(LinExpr({"x": 2, "y": 3}, -12), "<=", tag="c"))
    name, relation, value = handle
    simplex.push()
    simplex.assert_bound(name, relation, value, "c")
    assert simplex.check().feasible
    simplex.pop()
    # the same handle can be asserted again after a pop
    simplex.push()
    simplex.assert_bound(name, relation, value, "c")
    assert simplex.check().feasible
    simplex.pop()


# ----------------------------------------------------------------------
# CNF builder caching
# ----------------------------------------------------------------------
def test_cnf_builder_caches_repeated_subformulae():
    x = var("x")
    shared = disj([le(x, 1), eq(x, 5)])
    builder = CnfBuilder()
    builder.add_formula(conj([shared, le(x, 7)]))
    clauses_before = len(builder.clauses)
    atoms_before = len(builder.atom_of_var)
    # encoding a formula containing the same sub-formula reuses its aux var
    builder.add_formula(conj([shared, le(x, 9)]))
    assert len(builder.atom_of_var) == atoms_before + 1  # only (x <= 9) is new
    assert builder.cache_hits > 0
    new_clauses = builder.clauses[clauses_before:]
    assert len(new_clauses) <= 3


def test_cnf_duplicate_clauses_are_dropped():
    x = var("x")
    atom = le(x, 3)
    formula = conj([disj([atom, eq(x, 9)]), disj([atom, eq(x, 9)])])
    cnf = to_cnf(formula)
    assert len(cnf.atom_of_var) == 2
    keys = {tuple(sorted(clause)) for clause in cnf.clauses}
    assert len(keys) == len(cnf.clauses)


# ----------------------------------------------------------------------
# Statistics plumbing
# ----------------------------------------------------------------------
def test_check_reports_per_check_stats():
    x = var("x")
    solver = LiaSolver(LiaConfig())
    solver.add_assertion(conj([disj([eq(x, 1), eq(x, 5)]), ge(x, 2)]))
    first = solver.check()
    assert first.status is LiaStatus.SAT
    assert first.stats["theory_checks"] >= 1
    solver.add_assertion(ne(x, 5))
    second = solver.check()
    assert second.status is LiaStatus.UNSAT
    # stats are per-check deltas, not cumulative totals
    assert second.stats["restarts"] == 1
