"""Tests for the exact rational simplex and the integer layer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lia import LinExpr
from repro.lia.intsolver import ResourceLimit, check_integer_feasibility
from repro.lia.simplex import Constraint, Simplex, check_constraints


def expr(coeffs, const=0):
    return LinExpr(coeffs, const)


def test_simple_feasible_system():
    # x + y <= 4, x >= 1, y >= 2
    result = check_constraints(
        [
            Constraint(expr({"x": 1, "y": 1}, -4), "<="),
            Constraint(expr({"x": 1}, -1), ">="),
            Constraint(expr({"y": 1}, -2), ">="),
        ]
    )
    assert result.feasible
    model = result.model
    assert model["x"] + model["y"] <= 4
    assert model["x"] >= 1
    assert model["y"] >= 2


def test_simple_infeasible_system():
    # x >= 3 and x <= 1
    result = check_constraints(
        [
            Constraint(expr({"x": 1}, -3), ">=", tag="lo"),
            Constraint(expr({"x": 1}, -1), "<=", tag="hi"),
        ]
    )
    assert not result.feasible
    assert result.conflict == {"lo", "hi"}


def test_equalities():
    # x + y == 5, x - y == 1 -> x=3, y=2
    result = check_constraints(
        [
            Constraint(expr({"x": 1, "y": 1}, -5), "=="),
            Constraint(expr({"x": 1, "y": -1}, -1), "=="),
        ]
    )
    assert result.feasible
    assert result.model["x"] == Fraction(3)
    assert result.model["y"] == Fraction(2)


def test_infeasible_combination_of_rows():
    # x + y <= 1, x >= 1, y >= 1 is infeasible
    result = check_constraints(
        [
            Constraint(expr({"x": 1, "y": 1}, -1), "<=", tag=1),
            Constraint(expr({"x": 1}, -1), ">=", tag=2),
            Constraint(expr({"y": 1}, -1), ">=", tag=3),
        ]
    )
    assert not result.feasible
    assert result.conflict  # some explanation is produced


def test_negative_values_allowed():
    result = check_constraints([Constraint(expr({"x": 1}, 5), "<=")])  # x <= -5
    assert result.feasible
    assert result.model["x"] <= -5


def test_rational_vertex():
    # 2x <= 1, 2x >= 1 -> x = 1/2 over Q
    result = check_constraints(
        [
            Constraint(expr({"x": 2}, -1), "<="),
            Constraint(expr({"x": 2}, -1), ">="),
        ]
    )
    assert result.feasible
    assert result.model["x"] == Fraction(1, 2)


def test_integer_layer_rejects_fractional_only_solutions():
    # 2x == 1 has no integer solution
    outcome = check_integer_feasibility([Constraint(expr({"x": 2}, -1), "==")])
    assert not outcome.feasible


def test_integer_layer_finds_integral_point():
    # x + y == 4, x >= 1, y >= 1
    outcome = check_integer_feasibility(
        [
            Constraint(expr({"x": 1, "y": 1}, -4), "=="),
            Constraint(expr({"x": 1}, -1), ">="),
            Constraint(expr({"y": 1}, -1), ">="),
        ]
    )
    assert outcome.feasible
    assert outcome.model["x"] + outcome.model["y"] == 4


def test_integer_branching():
    # 2x + 2y == 6 and x >= y and y >= 1 -> x=2,y=1 (after branching on x=y=1.5)
    outcome = check_integer_feasibility(
        [
            Constraint(expr({"x": 2, "y": 2}, -6), "=="),
            Constraint(expr({"x": 1, "y": -1}), ">="),
            Constraint(expr({"y": 1}, -1), ">="),
        ]
    )
    assert outcome.feasible
    assert outcome.model["x"] + outcome.model["y"] == 3
    assert outcome.model["x"] >= outcome.model["y"] >= 1


def test_divisibility_conflicts_need_no_branching():
    # 2x = 1 is refuted by the gcd preprocessing even with a zero node budget.
    constraints = [Constraint(expr({"x": 2}, -1), "==")]
    outcome = check_integer_feasibility(constraints, max_nodes=0)
    assert not outcome.feasible


def test_node_limit_raises():
    # The Omega pre-pass decides this trivial system outright, so it is
    # disabled here to expose the branch-and-bound node budget.
    constraints = [Constraint(expr({"x": 1, "y": 1}, -1), ">=")]
    with pytest.raises(ResourceLimit):
        check_integer_feasibility(constraints, max_nodes=0, omega=False)


def test_gcd_tightening_of_inequalities():
    # 2x - 2y <= -1 and 2y - 2x <= 0 have rational but no integer solutions.
    outcome = check_integer_feasibility(
        [
            Constraint(expr({"x": 2, "y": -2}, 1), "<="),
            Constraint(expr({"x": -2, "y": 2}), "<="),
        ]
    )
    assert not outcome.feasible


def test_bound_implied_equality_enables_gcd_conflict():
    # g is forced to 1 by two inequalities; then 3x - 3y + 2g = 0 is a mod-3 conflict.
    outcome = check_integer_feasibility(
        [
            Constraint(expr({"g": 1}, -1), "<="),
            Constraint(expr({"g": 1}, -1), ">="),
            Constraint(expr({"x": 3, "y": -3, "g": 2}), "=="),
        ]
    )
    assert not outcome.feasible


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-3, max_value=3),
            st.integers(min_value=-3, max_value=3),
            st.integers(min_value=-5, max_value=5),
            st.sampled_from(["<=", ">=", "=="]),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_simplex_agrees_with_small_grid_search(rows):
    """The simplex verdict must agree with brute force over a small integer grid
    whenever brute force finds a solution (soundness of UNSAT over Q ⊇ Z)."""
    constraints = [
        Constraint(expr({"x": a, "y": b}, -c), rel)
        for a, b, c, rel in rows
        if a != 0 or b != 0
    ]
    if not constraints:
        return
    result = check_constraints(constraints)

    def holds(x, y):
        for a, b, c, rel in rows:
            if a == 0 and b == 0:
                continue
            value = a * x + b * y - c
            if rel == "<=" and not value <= 0:
                return False
            if rel == ">=" and not value >= 0:
                return False
            if rel == "==" and value != 0:
                return False
        return True

    grid_solution = any(holds(x, y) for x in range(-8, 9) for y in range(-8, 9))
    if grid_solution:
        assert result.feasible
    if result.feasible:
        # The rational model must satisfy every constraint exactly.
        model = result.model
        for a, b, c, rel in rows:
            if a == 0 and b == 0:
                continue
            value = a * model.get("x", 0) + b * model.get("y", 0) - c
            if rel == "<=":
                assert value <= 0
            elif rel == ">=":
                assert value >= 0
            else:
                assert value == 0
