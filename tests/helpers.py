"""Shared test helpers: brute-force oracles and encoding checkers."""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Tuple

from repro.automata import Nfa, words_up_to
from repro.core.predicates import evaluate_all
from repro.lia import LiaConfig, LiaSolver, LiaStatus


def enumerate_assignments(automata: Dict[str, Nfa], max_length: int) -> Iterable[Dict[str, str]]:
    """Yield every assignment of variables to words of length <= max_length."""
    names = sorted(automata)
    candidate_words = [list(words_up_to(automata[name], max_length)) for name in names]
    for choice in product(*candidate_words):
        yield dict(zip(names, choice))


def brute_force_predicates(
    predicates,
    automata: Dict[str, Nfa],
    max_length: int = 4,
    integers: Optional[Dict[str, int]] = None,
    integer_ranges: Optional[Dict[str, Tuple[int, int]]] = None,
) -> Optional[Dict[str, str]]:
    """Search for an assignment satisfying all predicates (bounded).

    ``integer_ranges`` allows a small search over integer variables (e.g.
    str.at indices); returns a satisfying string assignment or ``None``.
    """
    integer_ranges = integer_ranges or {}
    int_names = sorted(integer_ranges)
    int_domains = [range(integer_ranges[name][0], integer_ranges[name][1] + 1) for name in int_names]
    for strings in enumerate_assignments(automata, max_length):
        if int_names:
            for values in product(*int_domains):
                ints = dict(zip(int_names, values))
                ints.update(integers or {})
                if evaluate_all(predicates, strings, ints):
                    return strings
        else:
            if evaluate_all(predicates, strings, integers or {}):
                return strings
    return None


def solve_lia(formula, timeout: float = 30.0):
    """Solve a LIA formula with a generous timeout; fail the test on UNKNOWN."""
    result = LiaSolver(LiaConfig(timeout=timeout)).check(formula)
    assert result.status is not LiaStatus.UNKNOWN, f"LIA solver gave up: {result.reason}"
    return result


class ServeServerProc:
    """A ``python -m repro.serve`` subprocess for server tests.

    Boots on an ephemeral port, parses the ready line, and exposes
    ``host``/``port`` plus :meth:`stop` (graceful shutdown via the
    protocol, asserting a clean exit 0 with every worker reaped).
    """

    def __init__(self, *extra_args: str, timeout: float = 60.0):
        import os
        import re
        import subprocess
        import sys

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(repo, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=repo,
            text=True,
        )
        ready = self.proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", ready)
        if not match:
            self.proc.kill()
            err = self.proc.stderr.read()
            raise RuntimeError(f"server did not come up: {ready!r}\n{err}")
        self.host = match.group(1)
        self.port = int(match.group(2))

    def client(self, **kwargs):
        from repro.serve import ServeClient

        return ServeClient(self.host, self.port, **kwargs)

    def stop(self, expect_clean: bool = True) -> int:
        from repro.serve import ServeError

        try:
            with self.client(timeout=30.0) as client:
                client.shutdown()
        except ServeError:
            pass  # already shutting down / gone; the wait below decides
        try:
            code = self.proc.wait(timeout=30)
        except Exception:
            self.proc.kill()
            raise
        if expect_clean:
            assert code == 0, (code, self.proc.stderr.read())
        return code

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)
