"""Unit tests for LIA terms and formula constructors."""

from repro.lia import (
    FALSE,
    TRUE,
    LinExpr,
    conj,
    disj,
    eq,
    evaluate,
    formula_size,
    ge,
    gt,
    iff,
    implies,
    le,
    lt,
    ne,
    neg,
    substitute,
    var,
)


def test_linexpr_arithmetic():
    x, y = var("x"), var("y")
    expr = 2 * x + y - 3
    assert expr.coeffs == {"x": 2, "y": 1}
    assert expr.const == -3
    assert (expr - expr).is_constant()
    assert (-expr).coeffs == {"x": -2, "y": -1}


def test_linexpr_evaluate_and_substitute():
    x, y = var("x"), var("y")
    expr = 3 * x - y + 1
    assert expr.evaluate({"x": 2, "y": 4}) == 3
    substituted = expr.substitute({"x": y + 1})
    assert substituted.evaluate({"y": 5}) == 3 * 6 - 5 + 1


def test_zero_coefficients_are_dropped():
    x = var("x")
    expr = x - x
    assert expr.is_constant()
    assert expr.variables() == ()


def test_atoms_fold_constants():
    assert le(1, 2) is TRUE
    assert le(3, 2) is FALSE
    assert eq(5, 5) is TRUE
    assert ne(5, 5) is FALSE
    assert ne(4, 5) is TRUE


def test_connective_folding():
    x = var("x")
    atom = le(x, 3)
    assert conj([TRUE, atom]) == atom
    assert conj([FALSE, atom]) is FALSE
    assert disj([FALSE, atom]) == atom
    assert disj([TRUE, atom]) is TRUE
    assert neg(neg(atom)) == atom
    assert implies(TRUE, atom) == atom
    assert implies(atom, TRUE) is TRUE
    assert iff(TRUE, atom) == atom


def test_evaluate_formula():
    x, y = var("x"), var("y")
    formula = conj([le(x, y), ne(x, 0)])
    assert evaluate(formula, {"x": 1, "y": 2})
    assert not evaluate(formula, {"x": 0, "y": 2})
    assert not evaluate(formula, {"x": 3, "y": 2})


def test_strict_inequalities_over_integers():
    x = var("x")
    assert evaluate(lt(x, 2), {"x": 1})
    assert not evaluate(lt(x, 2), {"x": 2})
    assert evaluate(gt(x, 2), {"x": 3})
    assert evaluate(ge(x, 2), {"x": 2})


def test_substitute_formula():
    x, y = var("x"), var("y")
    formula = le(x, 5)
    substituted = substitute(formula, {"x": y + 10})
    assert evaluate(substituted, {"y": -5})
    assert not evaluate(substituted, {"y": 0})


def test_formula_size_counts_nodes():
    x = var("x")
    formula = conj([le(x, 1), disj([eq(x, 0), eq(x, 1)])])
    assert formula_size(formula) == 5
