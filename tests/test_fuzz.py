"""The differential fuzzer: clean sweeps, failure classification, the
shrink loop, and the injected-fault drill (``src/repro/testing/fuzz.py``).

The drill is the subsystem's acceptance test: a deterministic fault
injected into the engine via :mod:`repro.testing.faults` must be *caught*
by the fuzzer (classified ``crash``), *shrunk* to a locally-minimal
scenario, and emitted as a replayable SMT-LIB repro file — proving the
loop detects real bugs rather than merely re-confirming good verdicts.
"""

import os

import pytest

from repro.budget import UnknownReason
from repro.solver.config import SolverConfig
from repro.solver.result import SolveResult, Status, StringModel
from repro.testing import FaultInjector, FaultSpec
from repro.testing.fuzz import (
    CORE_BYSTANDER,
    CRASH,
    UNKNOWN_MISMATCH,
    UNVERIFIED_MODEL,
    WRONG_VERDICT,
    DifferentialFuzzer,
    default_configs,
    main,
)


def test_default_configs_mirror_the_portfolio():
    configs = default_configs(timeout=1.0)
    assert set(configs) == {"witness", "encoding", "frugal"}
    assert configs["witness"].distinct_shortcut
    assert not configs["encoding"].distinct_shortcut
    assert not configs["frugal"].lia_cuts
    assert not configs["frugal"].incremental_lia


def test_clean_sweep_has_no_failures(tmp_path):
    fuzzer = DifferentialFuzzer(repro_dir=str(tmp_path))
    report = fuzzer.run(range(6), budget=0.5)
    assert report.instances == 6
    assert report.checks == 18
    assert report.ok, report.summary()
    assert not os.listdir(tmp_path)  # no failures => no repro artifacts
    assert "no disagreements" in report.summary()


def test_unknowns_in_clean_sweeps_are_structured():
    """Gap-bearing scenarios may answer unknown — the sweep counts them
    instead of failing, because every unknown passed the typed-reason
    check (an untyped one would have been a structured-unknown-mismatch)."""
    fuzzer = DifferentialFuzzer()
    report = fuzzer.run(range(10, 16), budget=0.3)
    assert report.ok, report.summary()
    assert report.verdicts.get("unknown", 0) == report.unknowns


# ----------------------------------------------------------------------
# Classification (via result forgery at the _solve seam)
# ----------------------------------------------------------------------
class _ForgingFuzzer(DifferentialFuzzer):
    """Overrides the engine call to return a forged result — the
    classification and shrink logic downstream is the code under test."""

    def __init__(self, forged_result, **kwargs):
        super().__init__(**kwargs)
        self.forged_result = forged_result

    def _solve(self, problem, config, budget):
        self._last_session = None
        return self.forged_result


def _sat_seed():
    # seed 1 is an inversion scenario with ground truth sat
    from repro.benchgen.pipelines import scenario_from_seed

    seed = next(
        s for s in range(20) if scenario_from_seed(s).ground_truth() == "sat"
    )
    return seed


def test_wrong_verdict_is_caught_and_shrunk(tmp_path):
    seed = _sat_seed()
    forged = SolveResult(status=Status.UNSAT)
    fuzzer = _ForgingFuzzer(
        forged, configs={"witness": SolverConfig(timeout=1.0)}, repro_dir=str(tmp_path)
    )
    report = fuzzer.run([seed], budget=0.2)
    kinds = {f.kind for f in report.failures}
    assert WRONG_VERDICT in kinds, report.summary()
    failure = next(f for f in report.failures if f.kind == WRONG_VERDICT)
    # Shrunk to a local minimum: the forged unsat makes every scenario
    # with a sat ground truth fail, so no strictly-smaller candidate may
    # still carry a sat ground truth.
    for candidate in failure.scenario.shrink_candidates():
        if candidate.size() < failure.scenario.size():
            assert candidate.ground_truth() == "unsat", (failure.scenario, candidate)
    assert failure.repro_path is not None and os.path.exists(failure.repro_path)


def test_unverified_model_is_caught():
    seed = _sat_seed()
    forged = SolveResult(status=Status.SAT, model=StringModel(strings={}, integers={}))
    fuzzer = _ForgingFuzzer(forged, configs={"witness": SolverConfig(timeout=1.0)})
    report = fuzzer.run([seed], budget=0.2)
    assert any(f.kind == UNVERIFIED_MODEL for f in report.failures), report.summary()


def test_untyped_unknown_is_a_structured_unknown_mismatch():
    forged = SolveResult(status=Status.UNKNOWN, reason="gave up")
    fuzzer = _ForgingFuzzer(forged, configs={"witness": SolverConfig(timeout=1.0)})
    report = fuzzer.run([0], budget=0.2)
    assert any(f.kind == UNKNOWN_MISMATCH for f in report.failures), report.summary()


def test_typed_unknown_is_clean():
    from repro.budget import UnknownKind

    forged = SolveResult(
        status=Status.UNKNOWN,
        reason=UnknownReason(UnknownKind.INCOMPLETE, "decompose", "budget"),
    )
    fuzzer = _ForgingFuzzer(forged, configs={"witness": SolverConfig(timeout=1.0)})
    report = fuzzer.run([0], budget=0.2)
    assert report.ok, report.summary()
    assert report.unknowns == 1


def test_internal_error_counter_classifies_as_crash():
    forged = SolveResult(status=Status.UNKNOWN, stats={"internal_errors": 1})
    fuzzer = _ForgingFuzzer(forged, configs={"witness": SolverConfig(timeout=1.0)})
    report = fuzzer.run([0], budget=0.2)
    assert any(f.kind == CRASH for f in report.failures), report.summary()


# ----------------------------------------------------------------------
# The injected-fault drill (real engine, real fault, real shrink)
# ----------------------------------------------------------------------
def test_injected_fault_is_caught_shrunk_and_reproduced(tmp_path):
    # repeat=1 with the fuzzer's per-check injector.reset(): the fault
    # re-fires on every check, including every shrink re-run
    injector = FaultInjector([FaultSpec("enter:solve", at=1, action="raise")])
    fuzzer = DifferentialFuzzer(
        configs={"witness": SolverConfig(timeout=2.0)},
        repro_dir=str(tmp_path),
        injector=injector,
    )
    report = fuzzer.run([1], budget=0.5)
    crashes = [f for f in report.failures if f.kind == CRASH]
    assert crashes, report.summary()
    failure = crashes[0]
    assert "internal_errors" in failure.detail
    from repro.benchgen.pipelines import scenario_from_seed

    scenario = scenario_from_seed(1)
    # demonstrably shrunk: strictly smaller than the generated scenario
    assert failure.scenario.size() < scenario.size()
    assert failure.shrink_steps > 0
    # ... and minimal: the fault fires on every check, so the shrink loop
    # must have descended until no strictly-smaller candidate exists
    assert all(
        candidate.size() >= failure.scenario.size()
        for candidate in failure.scenario.shrink_candidates()
    ), failure.scenario
    # the repro artifact replays through the SMT-LIB frontend
    assert failure.repro_path is not None and os.path.exists(failure.repro_path)
    with open(failure.repro_path) as handle:
        text = handle.read()
    assert text.startswith("; fuzz repro: seed=1 kind=crash")
    from repro.smtlib.parser import parse_script

    assert parse_script(text) is not None


def test_injected_exhaustion_becomes_a_structured_unknown():
    injector = FaultInjector([FaultSpec("*", at=3, action="exhaust")])
    fuzzer = DifferentialFuzzer(
        configs={"witness": SolverConfig(timeout=2.0)}, injector=injector
    )
    report = fuzzer.run([0, 1], budget=0.5)
    assert report.ok, report.summary()
    assert report.unknowns == report.checks


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    assert main(["--seeds", "2", "--budget", "0.3", "--repro-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "instances=2" in out
