"""Tests for the DPLL(T) LIA solver facade."""

from hypothesis import given, settings, strategies as st

from repro.lia import (
    LiaConfig,
    LiaSolver,
    LiaStatus,
    check_model,
    conj,
    disj,
    eq,
    evaluate,
    ge,
    gt,
    implies,
    le,
    lt,
    ne,
    neg,
    var,
)
from repro.lia.nnf import to_nnf
from repro.lia.cnf import to_cnf


def solve(formula):
    return LiaSolver().check(formula)


def test_simple_sat_conjunction():
    x, y = var("x"), var("y")
    result = solve(conj([le(x + y, 10), ge(x, 3), ge(y, 4)]))
    assert result.status is LiaStatus.SAT
    model = result.model
    assert model["x"] >= 3 and model["y"] >= 4 and model["x"] + model["y"] <= 10


def test_simple_unsat_conjunction():
    x = var("x")
    result = solve(conj([ge(x, 5), le(x, 4)]))
    assert result.status is LiaStatus.UNSAT


def test_disjunction_requires_search():
    x, y = var("x"), var("y")
    formula = conj(
        [
            disj([eq(x, 1), eq(x, 5)]),
            disj([eq(y, 2), eq(y, 7)]),
            eq(x + y, 12),
        ]
    )
    result = solve(formula)
    assert result.status is LiaStatus.SAT
    assert (result.model["x"], result.model["y"]) == (5, 7)


def test_unsat_disjunction():
    x = var("x")
    formula = conj([disj([eq(x, 1), eq(x, 2)]), ge(x, 3)])
    assert solve(formula).status is LiaStatus.UNSAT


def test_negation_and_implication():
    x, y = var("x"), var("y")
    formula = conj([implies(gt(x, 0), gt(y, 10)), eq(x, 3), le(y, 20)])
    result = solve(formula)
    assert result.status is LiaStatus.SAT
    assert result.model["y"] > 10


def test_not_equal_atoms():
    x, y = var("x"), var("y")
    formula = conj([ne(x, y), ge(x, 0), le(x, 1), ge(y, 0), le(y, 1)])
    result = solve(formula)
    assert result.status is LiaStatus.SAT
    assert result.model["x"] != result.model["y"]


def test_integrality_makes_formula_unsat():
    x = var("x")
    # 2x = 7 has a rational but no integer solution.
    assert solve(eq(2 * x, 7)).status is LiaStatus.UNSAT


def test_models_are_checked_against_formula():
    x, y, z = var("x"), var("y"), var("z")
    formula = conj(
        [
            disj([lt(x, y), lt(y, x)]),
            eq(x + y + z, 7),
            ge(z, 2),
            neg(eq(z, 3)),
        ]
    )
    result = solve(formula)
    assert result.status is LiaStatus.SAT
    assert check_model(formula, result.model)


def test_nnf_eliminates_negations():
    x = var("x")
    formula = neg(conj([le(x, 3), neg(eq(x, 1))]))
    nnf = to_nnf(formula)
    # NNF must not contain Not nodes.
    from repro.lia import Not

    def has_not(node):
        if isinstance(node, Not):
            return True
        args = getattr(node, "args", ())
        return any(has_not(a) for a in args)

    assert not has_not(nnf)
    # Equivalence spot-check on a few points.
    for value in (-1, 0, 1, 2, 3, 4, 5):
        assert evaluate(formula, {"x": value}) == evaluate(nnf, {"x": value})


def test_cnf_counts_atoms_once():
    x = var("x")
    atom = le(x, 3)
    cnf = to_cnf(conj([disj([atom, eq(x, 9)]), atom]))
    assert len(cnf.atom_of_var) == 2


def test_timeout_returns_unknown_or_finishes(tmp_path):
    x = var("x")
    clauses = [disj([eq(x, i), ne(x, i)]) for i in range(5)]
    config = LiaConfig(timeout=10.0)
    result = LiaSolver(config).check(conj(clauses))
    assert result.status in (LiaStatus.SAT, LiaStatus.UNKNOWN)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-2, max_value=2),
            st.integers(min_value=-2, max_value=2),
            st.integers(min_value=-4, max_value=4),
            st.sampled_from(["<=", ">=", "==", "!="]),
        ),
        min_size=1,
        max_size=4,
    )
)
def test_solver_agrees_with_grid_oracle(rows):
    """Property: the DPLL(T) verdict matches brute force over a small grid."""
    x, y = var("x"), var("y")
    atoms = []
    for a, b, c, rel in rows:
        lhs = a * x + b * y
        if rel == "<=":
            atoms.append(le(lhs, c))
        elif rel == ">=":
            atoms.append(ge(lhs, c))
        elif rel == "==":
            atoms.append(eq(lhs, c))
        else:
            atoms.append(ne(lhs, c))
    # Bound the search space so the grid oracle is exact.
    atoms.extend([ge(x, -3), le(x, 3), ge(y, -3), le(y, 3)])
    formula = conj(atoms)
    result = solve(formula)

    def holds(vx, vy):
        return evaluate(formula, {"x": vx, "y": vy})

    oracle = any(holds(vx, vy) for vx in range(-3, 4) for vy in range(-3, 4))
    assert result.status is not LiaStatus.UNKNOWN
    assert result.is_sat == oracle
    if result.is_sat:
        assert check_model(formula, result.model)
