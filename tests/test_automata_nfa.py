"""Unit tests for the core NFA data structure."""

import random

from repro.automata import EPSILON, Nfa


def test_from_word_accepts_exactly_that_word():
    nfa = Nfa.from_word("abc")
    assert nfa.accepts("abc")
    assert not nfa.accepts("ab")
    assert not nfa.accepts("abcd")
    assert not nfa.accepts("")


def test_from_word_empty_word():
    nfa = Nfa.from_word("")
    assert nfa.accepts("")
    assert not nfa.accepts("a")


def test_from_words_finite_language():
    nfa = Nfa.from_words(["a", "bb", ""])
    assert nfa.accepts("a")
    assert nfa.accepts("bb")
    assert nfa.accepts("")
    assert not nfa.accepts("b")
    assert not nfa.accepts("ab")


def test_universal_accepts_everything():
    nfa = Nfa.universal("ab")
    for word in ["", "a", "b", "ab", "ba", "aabb"]:
        assert nfa.accepts(word)


def test_empty_language():
    nfa = Nfa.empty_language()
    assert nfa.is_empty()
    assert not nfa.accepts("")


def test_epsilon_language():
    nfa = Nfa.epsilon_language()
    assert nfa.accepts("")
    assert not nfa.accepts("a")
    assert not nfa.is_empty()


def test_epsilon_closure_follows_chains():
    nfa = Nfa()
    a, b, c = nfa.add_states(3)
    nfa.make_initial(a)
    nfa.add_transition(a, EPSILON, b)
    nfa.add_transition(b, EPSILON, c)
    assert nfa.epsilon_closure([a]) == frozenset({a, b, c})


def test_trim_removes_useless_states():
    nfa = Nfa()
    a, b, c, d = nfa.add_states(4)
    nfa.make_initial(a)
    nfa.make_final(c)
    nfa.add_transition(a, "x", b)
    nfa.add_transition(b, "y", c)
    nfa.add_transition(a, "z", d)  # d is a dead end
    trimmed = nfa.trim()
    assert d not in trimmed.states
    assert trimmed.accepts("xy")
    assert not trimmed.accepts("z")


def test_trim_keeps_epsilon_acceptance():
    nfa = Nfa()
    a = nfa.add_state()
    nfa.make_initial(a)
    nfa.make_final(a)
    trimmed = nfa.trim()
    assert trimmed.accepts("")


def test_renumbered_preserves_language():
    nfa = Nfa.from_word("ab")
    renamed, mapping = nfa.renumbered(100)
    assert renamed.accepts("ab")
    assert not renamed.accepts("a")
    assert all(new >= 100 for new in mapping.values())


def test_size_counts_states_and_transitions():
    nfa = Nfa.from_word("ab")
    assert nfa.size() == len(nfa.states) + nfa.num_transitions()


def test_add_transition_validates_symbols():
    nfa = Nfa()
    a, b = nfa.add_states(2)
    import pytest

    with pytest.raises(ValueError):
        nfa.add_transition(a, "ab", b)


def test_reachable_and_coreachable():
    nfa = Nfa()
    a, b, c = nfa.add_states(3)
    nfa.make_initial(a)
    nfa.make_final(b)
    nfa.add_transition(a, "x", b)
    nfa.add_transition(c, "y", b)
    assert nfa.reachable_states() == {a, b}
    assert nfa.coreachable_states() == {a, b, c}


def test_fresh_state_ids_never_collide():
    nfa = Nfa()
    nfa.add_state(5)
    assert nfa.add_state() == 6
    nfa.make_final(10)
    assert nfa.add_state() == 11
    nfa.add_transition(20, "a", 21)
    fresh = nfa.add_state()
    assert fresh == 22
    assert fresh not in {5, 6, 10, 11, 20, 21}


def test_fresh_state_ids_after_copy_and_trim():
    nfa = Nfa.from_word("abc")
    for derived in (nfa.copy(), nfa.trim(), nfa.renumbered(7)[0]):
        fresh = derived.add_state()
        assert fresh not in (derived.states - {fresh})


def _random_nfa(rng, states=8, transitions=20, alphabet="abc"):
    nfa = Nfa(alphabet)
    for _ in range(states):
        nfa.add_state()
    for _ in range(transitions):
        src = rng.randrange(states)
        dst = rng.randrange(states)
        symbol = rng.choice([EPSILON] + list(alphabet))
        nfa.add_transition(src, symbol, dst)
    nfa.make_initial(rng.randrange(states))
    nfa.make_final(rng.randrange(states))
    return nfa


def test_transitions_on_matches_iter_transitions():
    """The alphabet-partitioned index is a faithful view of the delta."""
    rng = random.Random(3)
    for _ in range(20):
        nfa = _random_nfa(rng)
        by_symbol = {}
        for src, symbol, dst in nfa.iter_transitions():
            by_symbol.setdefault(symbol, set()).add((src, dst))
        for symbol in list(by_symbol) + ["unused"]:
            indexed = {
                (src, dst)
                for src, dsts in nfa.transitions_on(symbol).items()
                for dst in dsts
            }
            assert indexed == by_symbol.get(symbol, set())


def test_transitions_map_lists_outgoing_transitions():
    nfa = Nfa("ab")
    a, b = nfa.add_states(2)
    nfa.add_transition(a, "a", b)
    nfa.add_transition(a, EPSILON, b)
    assert nfa.transitions_map(a) == {"a": {b}, EPSILON: {b}}
    assert nfa.transitions_map(b) == {}
