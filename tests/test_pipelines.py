"""The pipeline workload generator: concrete/symbolic agreement, curated
decidability, and the shrink lattice (see ``src/repro/benchgen/pipelines.py``)."""

import pytest

from repro.benchgen import pipelines as P
from repro.smtlib.printer import problem_to_smtlib
from repro.solver import PositionSolver, SolverConfig
from repro.solver.bruteforce import brute_force_check
from repro.solver.result import Status
from repro.strings.semantics import eval_problem

SUITE_SEED = 11  # what benchmark_sets(scale=1, seed=7) passes to generate()


def _solver(timeout=30.0):
    return PositionSolver(SolverConfig(timeout=timeout))


# ----------------------------------------------------------------------
# Stage semantics: concrete execution vs symbolic compilation
# ----------------------------------------------------------------------
def test_concat_substr_replace_stages_concrete():
    pipe = P.Pipeline(
        "(a|b)*",
        3,
        (
            P.ConcatLit("ab", prepend=True),
            P.SubstrWindow(1, 3),
            P.ReplaceOnce("ba", "b"),
        ),
    )
    # "ba" -> "abba" -> substr(1,3)="bba" -> replace once -> "bb"
    assert pipe.run("ba") == "bb"
    assert pipe.run("") == "b"  # "ab" -> "b" -> "b"


def test_regex_filter_drops_rejected_words():
    pipe = P.Pipeline("(a|b)*", 2, (P.RegexFilter("a(a|b)*"),))
    assert pipe.run("ab") == "ab"
    assert pipe.run("ba") is None


def test_splitjoin_bound_excludes_overflowing_inputs():
    pipe = P.Pipeline("(a|b)*", 4, (P.SplitJoin("b", "a", bound=2),))
    assert pipe.run("ab") == "aa"
    assert pipe.run("bb") == "aa"
    assert pipe.run("bbb") is None  # three separators > bound 2


def test_translate_is_a_bounded_homomorphism():
    pipe = P.Pipeline("(a|b)*", 4, (P.Translate((("b", "a"),), bound=2),))
    assert pipe.run("ba") == "aa"
    assert pipe.run("bbb") is None


def test_replace_var_enumerates_needle_language():
    stage = P.ReplaceVar("a(a|b)", needle_bound=2, replacement="")
    pipe = P.Pipeline("(a|b)*", 3, (stage,))
    assert stage.needle_words(("a", "b")) == ["aa", "ab"]
    # needle "ab" deletes the first "ab"
    assert pipe.run("aab", ["ab"]) == "a"


def test_every_execution_satisfies_the_compiled_problem():
    """The bridge invariant: each concrete execution extends to a model of
    the symbolic compilation (checked via the semantics oracle)."""
    pipe = P.Pipeline(
        "(a|b)*b",
        3,
        (P.ConcatLit("a", prepend=False), P.ReplaceOnce("ab", "b"), P.SubstrWindow(0, 2)),
    )
    scenario = P.PipelineScenario("bridge", "reachability", pipe, payload="b")
    problem = scenario.problem()
    checked = 0
    for word, _needles, output in pipe.executions():
        if "b" not in output:
            continue
        strings = {"l0": word}
        value = word
        for index, stage in enumerate(pipe.stages, start=1):
            value = stage.apply(value, [])
            strings[f"l{index}"] = value
        assert eval_problem(problem, strings), (word, strings)
        checked += 1
    assert checked > 0


# ----------------------------------------------------------------------
# Ground truth vs solver and brute force
# ----------------------------------------------------------------------
def test_suite_instances_decide_and_match_ground_truth():
    """The curated suite seed: every instance decided, verdicts match the
    enumerated ground truth, every sat model verified (this is exactly
    what the committed corpus and the perf bench gate on)."""
    solver = _solver()
    for name, problem, expected in P.generate(12, seed=SUITE_SEED):
        result = solver.check(problem)
        assert result.status in (Status.SAT, Status.UNSAT), (
            name,
            result.status,
            result.reason,
        )
        assert result.status.value == expected, (name, result.status, expected)
        if result.status is Status.SAT:
            model = result.model
            assert model is not None, name
            assert eval_problem(problem, model.strings, model.integers), name


def test_ground_truth_agrees_with_brute_force_on_small_instances():
    confirmed = 0
    for seed in range(8):
        scenario = P.scenario_from_seed(seed, include_gaps=False)
        expected = scenario.ground_truth()
        brute = brute_force_check(scenario.problem(), max_length=3, timeout=0.5)
        if brute.status in (Status.SAT, Status.UNSAT):
            assert brute.status.value == expected, scenario.name
            confirmed += 1
    assert confirmed > 0  # the oracle must actually decide something


def test_equivalence_shares_the_input_variable():
    scenario = P.scenario_from_seed(2, include_gaps=False)
    assert scenario.kind == "equivalence"
    problem = scenario.problem()
    variables = set(problem.string_variables())
    assert "l0" in variables and "r0" not in variables


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def test_shrink_candidates_are_strictly_smaller():
    for seed in (0, 1, 2, 5):
        scenario = P.scenario_from_seed(seed)
        for candidate in scenario.shrink_candidates():
            assert candidate.size() < scenario.size(), (scenario.name, candidate)


def test_shrink_reaches_a_fixpoint():
    scenario = P.scenario_from_seed(4)
    current = scenario
    for _ in range(100):
        candidates = [c for c in current.shrink_candidates() if c.size() < current.size()]
        if not candidates:
            break
        current = candidates[0]
    else:
        pytest.fail("shrinking did not converge in 100 steps")
    assert current.size() <= scenario.size()


# ----------------------------------------------------------------------
# Pinned gaps
# ----------------------------------------------------------------------
def test_gap_problems_carry_ground_truth():
    names = [name for name, _, _ in P.gap_problems()]
    assert names == [
        "gap-levi-3split",
        "gap-var-needle-absent",
        "gap-var-needle-fixpoint",
    ]
    for _, problem, expected in P.gap_problems():
        assert expected in ("sat", "unsat")
        assert problem.atoms
