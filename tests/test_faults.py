"""Chaos suite: injected faults never corrupt verdicts or sessions.

Faults ride the budget hook (:mod:`repro.testing.faults`): at deterministic
``(stage, count)`` coordinates a check raises an unexpected exception,
simulates budget exhaustion, or delivers a ``KeyboardInterrupt`` — in the
middle of whatever engine stage happens to be running.  The suite asserts
the two invariants the robustness layer promises:

1. **never a wrong verdict** — a faulted check answers the true status or
   a lawful ``unknown``/``timeout``, never the opposite verdict;
2. **never a corrupted session** — after the fault, the *same* session
   re-checked without faults answers exactly what a fresh solver does.

Schedules are seeded (same seed → same chaos), so a failure here is a
plain reproducible test failure, not a flake.
"""

import pytest

from repro import (
    Budget,
    LengthConstraint,
    RegexMembership,
    Session,
    SolverConfig,
    Status,
    UnknownKind,
    UnknownReason,
    WordEquation,
    lit,
    str_len,
    term,
)
from repro.lia import ge, le
from repro.testing import FaultInjector, FaultSpec, InjectedFault, seeded_faults


def _config():
    return SolverConfig(timeout=30.0)


#: (atoms, expected status) — small instances with known ground truth that
#: still exercise normalization, decomposition, noodling, encoding and LIA
_GROUND_TRUTH = [
    (
        [
            RegexMembership("x", "(ab)*", positive=True),
            LengthConstraint(ge(str_len("x"), 4)),
        ],
        Status.SAT,
    ),
    (
        [
            RegexMembership("x", "(ab)*", positive=True),
            RegexMembership("x", "(a|b)*aa(a|b)*", positive=True),
        ],
        Status.UNSAT,
    ),
    (
        [
            WordEquation(term("x", "y"), term("y", "x")),
            RegexMembership("x", "a(a)*", positive=True),
            RegexMembership("y", "b(b)*", positive=True),
        ],
        Status.UNSAT,
    ),
    (
        [
            WordEquation(term("x", lit("b")), term(lit("a"), "y")),
            LengthConstraint(ge(str_len("x"), 2)),
            LengthConstraint(le(str_len("x"), 4)),
        ],
        Status.SAT,
    ),
]


def _fresh_verdict(atoms):
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    return session.check().status


@pytest.mark.parametrize("seed", range(24))
def test_chaos_never_wrong_verdict_never_corrupted_session(seed):
    atoms, expected = _GROUND_TRUTH[seed % len(_GROUND_TRUTH)]
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)

    injector = seeded_faults(seed, count=2)
    try:
        faulted = session.check(budget=Budget(30.0, hook=injector))
    except KeyboardInterrupt:
        faulted = None  # interrupts propagate; the session must survive them
    if faulted is not None and faulted.status in (Status.SAT, Status.UNSAT):
        # invariant 1: a decided verdict under chaos is the true verdict
        assert faulted.status is expected, (
            f"seed {seed}: fault produced wrong verdict "
            f"{faulted.status} (expected {expected})"
        )

    # invariant 2: the session is not corrupted — a clean re-check matches
    # a fresh solver exactly
    recheck = session.check()
    assert recheck.status is expected, (
        f"seed {seed}: post-fault session answers {recheck.status}, "
        f"fresh solver answers {expected} ({recheck.reason})"
    )


def test_injected_exception_surfaces_as_internal_error_with_stage():
    atoms, expected = _GROUND_TRUTH[0]
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    injector = FaultInjector([FaultSpec("enter:solve", at=1, action="raise")])
    result = session.check(budget=Budget(30.0, hook=injector))
    assert result.status is Status.UNKNOWN
    assert isinstance(result.reason, UnknownReason)
    assert result.reason.kind is UnknownKind.INTERNAL_ERROR
    assert "InjectedFault" in result.reason.detail
    assert session.check().status is expected


def test_injected_exhaustion_reports_timeout_kind():
    atoms, expected = _GROUND_TRUTH[1]
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    injector = FaultInjector([FaultSpec("*", at=2, action="exhaust")])
    result = session.check(budget=Budget(30.0, hook=injector))
    assert result.status is Status.TIMEOUT
    assert isinstance(result.reason, UnknownReason)
    assert result.reason.kind is UnknownKind.TIMEOUT
    assert "injected" in result.reason.detail
    assert session.check().status is expected


def test_fault_schedule_is_deterministic():
    atoms, _ = _GROUND_TRUTH[0]

    def run(seed):
        session = Session(config=_config(), alphabet=("a", "b"))
        for atom in atoms:
            session.add(atom)
        injector = seeded_faults(seed, count=2)
        try:
            result = session.check(budget=Budget(30.0, hook=injector))
            return (result.status, str(result.reason))
        except KeyboardInterrupt:
            return ("interrupt", "")

    assert run(7) == run(7)
    specs = [(s.stage, s.at, s.action) for s in seeded_faults(7, count=3).specs]
    assert specs == [(s.stage, s.at, s.action) for s in seeded_faults(7, count=3).specs]


def test_injector_trace_records_coordinates():
    atoms, _ = _GROUND_TRUTH[0]
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    injector = FaultInjector()
    injector.trace_enabled = True
    result = session.check(budget=Budget(30.0, hook=injector))
    assert result.status is Status.SAT
    stages = {stage for stage, _ in injector.trace}
    # the trace must span coarse pipeline stages and deep engine loops
    assert any(stage.startswith("enter:") for stage in stages)
    assert any(not stage.startswith("enter:") for stage in stages)


def test_delay_fault_stretches_stage_past_real_deadline():
    # a delay fault inside a stage makes the *next* checkpoint trip the
    # real deadline: the result is a truthful timeout, not a hang
    atoms, _ = _GROUND_TRUTH[0]
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    injector = FaultInjector([FaultSpec("*", at=1, action="delay", delay=0.3)])
    result = session.check(budget=Budget(0.05, hook=injector))
    assert result.status in (Status.TIMEOUT, Status.UNKNOWN)
    if result.status is Status.TIMEOUT:
        assert result.reason.kind is UnknownKind.TIMEOUT


# ----------------------------------------------------------------------
# Stage-glob matching semantics (unit level, no solving)
# ----------------------------------------------------------------------


def test_empty_glob_matches_nothing():
    # fnmatchcase("x", "") is only true for the empty string, and no hook
    # event carries an empty stage name — an empty pattern is inert.
    spec = FaultSpec("", at=1)
    injector = FaultInjector([spec])
    injector("automata.dense", 1)
    injector("enter:solve", 1)
    assert spec.fired == 0
    # the empty stage itself would match; the hook never emits one, but
    # the semantics are fnmatch's, not a special case
    with pytest.raises(InjectedFault):
        injector("", 1)


def test_star_matches_dotted_stages_but_prefix_needs_its_own_star():
    # "*" crosses "." boundaries (fnmatch is not a path matcher): a bare
    # star sees every stage, while "automata" without a star matches only
    # the exact name, not "automata.dense".
    with pytest.raises(InjectedFault):
        FaultInjector([FaultSpec("*", at=1)])("automata.dense", 1)
    # exact name without glob: no fire on the dotted sub-stage
    injector = FaultInjector([FaultSpec("automata", at=1)])
    injector("automata.dense", 1)
    assert injector.specs[0].fired == 0
    with pytest.raises(InjectedFault):
        FaultInjector([FaultSpec("automata.*", at=1)])("automata.dense", 1)
    # "automata.*" requires the dot: the bare parent stage does not match
    injector = FaultInjector([FaultSpec("automata.*", at=1)])
    injector("automata", 1)
    assert injector.specs[0].fired == 0


def test_star_pattern_counts_per_stage_not_globally():
    # ``at`` compares against the *per-stage* counter the budget hook
    # passes, so "*" at=2 fires on the second event of any single stage,
    # not the second event overall.
    spec = FaultSpec("*", at=2)
    injector = FaultInjector([spec])
    injector("automata.dense", 1)
    injector("lia.sat", 1)
    assert spec.fired == 0
    with pytest.raises(InjectedFault):
        injector("lia.sat", 2)


def test_overlapping_specs_fire_in_list_order():
    # Two specs matching the same coordinate: the earlier spec in the
    # list wins (its trigger raises before the later one is consulted),
    # and the later spec stays armed for a future event.
    first = FaultSpec("automata.*", at=1, action="raise")
    second = FaultSpec("*", at=1, action="interrupt")
    injector = FaultInjector([first, second])
    with pytest.raises(InjectedFault):
        injector("automata.dense", 1)
    assert first.fired == 1
    assert second.fired == 0
    # the second spec still fires on the next matching coordinate
    with pytest.raises(KeyboardInterrupt):
        injector("lia.sat", 1)
    assert second.fired == 1


def test_repeat_caps_firings_and_reset_rearms():
    spec = FaultSpec("lia.*", at=1, action="delay", delay=0.0, repeat=2)
    injector = FaultInjector([spec])
    injector("lia.sat", 1)
    injector("lia.omega", 1)
    assert spec.fired == 2
    # exhausted: a third matching coordinate is ignored
    injector("lia.eliminate", 1)
    assert spec.fired == 2
    injector.reset()
    assert spec.fired == 0
    injector("lia.sat", 1)
    assert spec.fired == 1
