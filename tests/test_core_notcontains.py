"""Tests for the ¬contains machinery (§6.4)."""

from repro.automata import compile_regex
from repro.core.notcontains import NotContainsEncoder, base_transition_counts, find_failing_offset
from repro.core.predicates import NotContains
from repro.core.single import encode_single
from repro.core.predicates import Disequality
from repro.lia.terms import ForAll


def test_find_failing_offset():
    predicate = NotContains(("x",), ("y",))
    assert find_failing_offset(predicate, {"x": "ab", "y": "aabb"}) == 1
    assert find_failing_offset(predicate, {"x": "ba", "y": "aaaa"}) is None
    # The paper's Fig. 5 example: aba is not contained in aabba.
    assert find_failing_offset(predicate, {"x": "aba", "y": "aabba"}) is None


def test_flatness_requirement_detection():
    flat = {
        "x": compile_regex("(ab)*", alphabet="ab"),
        "y": compile_regex("a*", alphabet="ab"),
    }
    encoder = NotContainsEncoder(NotContains(("x",), ("y",)), flat)
    assert encoder.languages_are_flat()

    non_flat = {
        "x": compile_regex("(a|b)*", alphabet="ab"),
        "y": compile_regex("a*", alphabet="ab"),
    }
    encoder = NotContainsEncoder(NotContains(("x",), ("y",)), non_flat)
    assert not encoder.languages_are_flat()


def test_base_transition_counts_cover_variable_transitions():
    automata = {
        "x": compile_regex("(ab)*", alphabet="ab"),
        "y": compile_regex("a*", alphabet="ab"),
    }
    encoding = encode_single(Disequality(("x",), ("y",)), automata)
    counts = base_transition_counts(encoding.parikh, encoding.info)
    variables = {key[0] for key in counts}
    assert variables == {"x", "y"}
    # Every count is a sum over the copies of the base transition (>= 3 copies each).
    assert all(len(expr.coeffs) >= 3 for expr in counts.values())


def test_instantiation_lemma_mentions_master_counts():
    automata = {
        "x": compile_regex("a*", alphabet="ab"),
        "y": compile_regex("(ab)*", alphabet="ab"),
    }
    predicate = NotContains(("x",), ("y",))
    encoder = NotContainsEncoder(predicate, automata)
    master = encode_single(Disequality(("x",), ("y",)), automata, prefix="m.")
    master_counts = base_transition_counts(master.parikh, master.info)
    lemma = encoder.instantiation_lemma(0, master_counts, master.length_of)
    names = set(lemma.variables())
    assert any(name.startswith("m.") for name in names)  # linked to the master encoding
    assert any(name.startswith("nc0.") for name in names)  # fresh inner copy


def test_quantified_formula_shape():
    automata = {
        "x": compile_regex("a*", alphabet="ab"),
        "y": compile_regex("(ab)*", alphabet="ab"),
    }
    predicate = NotContains(("x",), ("y",))
    encoder = NotContainsEncoder(predicate, automata)
    master = encode_single(Disequality(("x",), ("y",)), automata, prefix="m.")
    master_counts = base_transition_counts(master.parikh, master.info)
    quantified = encoder.quantified_formula(master_counts, master.length_of)
    assert isinstance(quantified, ForAll)
    assert quantified.bound == ("@kappa",)
