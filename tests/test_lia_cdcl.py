"""CDCL invariants of the rebuilt SAT core (:mod:`repro.lia.sat`).

Three invariant families, each checked against brute-force ground truth on
small instances:

* **learning soundness** — every clause the engine adds to its database
  (1UIP conflict clauses, minimized or not, and learned units) is a logical
  consequence of the original clause set;
* **search correctness** — verdicts and models agree with exhaustive
  enumeration across randomized incremental scripts (which exercises
  non-chronological backjumping, restarts and DB reduction end to end: an
  unsound backjump level or a deleted reason clause shows up as a wrong
  verdict);
* **assumption semantics** — ``solve(assumptions=…)`` agrees with solving
  the clauses plus assumption units, the failed-assumption set is a subset
  of the assumptions, and re-solving under only the failed assumptions is
  still unsatisfiable (the core really is a core).
"""

import itertools
import random

import pytest

from repro.lia import LiaSolver, LiaStatus, conj, ge, le, ne, var
from repro.lia.sat import DpllSolver


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------
def _assignments(num_vars):
    for bits in itertools.product((False, True), repeat=num_vars):
        yield {v: bits[v - 1] for v in range(1, num_vars + 1)}


def _satisfies(assignment, clause):
    return any(assignment[abs(lit)] == (lit > 0) for lit in clause)


def _brute_force(num_vars, clauses):
    for assignment in _assignments(num_vars):
        if all(_satisfies(assignment, c) for c in clauses):
            return assignment
    return None


def _implied(num_vars, clauses, candidate):
    """Is ``candidate`` a logical consequence of ``clauses``?"""
    for assignment in _assignments(num_vars):
        if all(_satisfies(assignment, c) for c in clauses):
            if not _satisfies(assignment, candidate):
                return False
    return True


def _random_instance(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        chosen = rng.sample(range(1, num_vars + 1), width)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in chosen))
    return clauses


# ----------------------------------------------------------------------
# Learned clauses are implied by the input
# ----------------------------------------------------------------------
def test_learned_clauses_are_implied_by_the_input():
    rng = random.Random(7)
    checked_learned = 0
    for round_index in range(60):
        num_vars = rng.randint(4, 8)
        clauses = _random_instance(rng, num_vars, rng.randint(6, 22))
        solver = DpllSolver(num_vars=num_vars, clauses=clauses)
        original_units = set(solver._units)
        original_count = len(solver.clauses)
        verdict, model = solver.solve()

        expected = _brute_force(num_vars, clauses)
        assert (verdict == "sat") == (expected is not None), (
            f"round {round_index}: verdict {verdict} vs brute force {expected}"
        )
        if verdict == "sat":
            assert all(_satisfies(model, c) for c in clauses)

        for index in range(original_count, len(solver.clauses)):
            learned = solver.clauses[index]
            if not learned:
                continue  # reduced away
            checked_learned += 1
            assert _implied(num_vars, clauses, tuple(learned)), (
                f"round {round_index}: learned clause {learned} is not implied"
            )
        for literal in solver._units - original_units:
            checked_learned += 1
            assert _implied(num_vars, clauses, (literal,)), (
                f"round {round_index}: learned unit {literal} is not implied"
            )
    assert checked_learned > 0, "no conflict clause was ever learned"


# ----------------------------------------------------------------------
# Non-chronological backjumping
# ----------------------------------------------------------------------
def test_backjump_skips_independent_decision_levels(monkeypatch):
    # Variables 2..6 are free decisions between the culprit (1) and the
    # conflict on 7/8: the learned clause depends only on variable 1, so
    # in the conflict-heavy regime (forced here by zeroing the sparse
    # threshold) recovery must jump over the independent levels — a
    # chronological engine would undo exactly one level per conflict.
    import repro.lia.sat as sat_module

    monkeypatch.setattr(sat_module, "_DLIS_CONFLICT_LIMIT", -1)
    clauses = [(-1, 7, 8), (-1, 7, -8), (-1, -7, 8), (-1, -7, -8)]
    solver = DpllSolver(num_vars=8, clauses=clauses)
    verdict, model = solver.solve()
    assert verdict == "sat"
    assert model[1] is False  # the only way to satisfy the quad
    assert solver.stats.backjump_levels > solver.stats.conflicts, (
        "conflicts never skipped a level: backjumping is chronological"
    )


def test_sparse_regime_backtracks_chronologically():
    # Model search (conflict-sparse) keeps the trail: every conflict
    # undoes exactly one level, the learned clause prunes the dead region.
    clauses = [(-1, 7, 8), (-1, 7, -8), (-1, -7, 8), (-1, -7, -8)]
    solver = DpllSolver(num_vars=8, clauses=clauses)
    verdict, model = solver.solve()
    assert verdict == "sat"
    assert model[1] is False
    assert solver.stats.backjump_levels == solver.stats.conflicts


def test_backjump_level_yields_asserting_clauses():
    # After every conflict the engine must be able to continue and still
    # terminate with the right verdict — pigeonhole instances make every
    # wrong backjump level explode or misreport.
    def pigeonhole(pigeons, holes):
        def v(p, h):
            return p * holes + h + 1

        clauses = [tuple(v(p, h) for h in range(holes)) for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append((-v(p1, h), -v(p2, h)))
        return pigeons * holes, clauses

    num_vars, clauses = pigeonhole(4, 3)
    solver = DpllSolver(num_vars=num_vars, clauses=clauses)
    assert solver.solve()[0] == "unsat"
    assert solver.stats.conflicts > 0
    num_vars, clauses = pigeonhole(3, 3)
    solver = DpllSolver(num_vars=num_vars, clauses=clauses)
    verdict, model = solver.solve()
    assert verdict == "sat"
    assert all(_satisfies(model, c) for c in clauses)


def test_learned_db_reduction_keeps_the_verdict():
    rng = random.Random(21)
    for _ in range(10):
        num_vars = rng.randint(6, 9)
        clauses = _random_instance(rng, num_vars, rng.randint(18, 30))
        solver = DpllSolver(num_vars=num_vars, clauses=clauses)
        solver._max_learnts = 2  # force aggressive LBD reduction
        verdict, model = solver.solve()
        expected = _brute_force(num_vars, clauses)
        assert (verdict == "sat") == (expected is not None)
        if verdict == "sat":
            assert all(_satisfies(model, c) for c in clauses)


def test_luby_restarts_fire_and_keep_clauses(monkeypatch):
    import repro.lia.sat as sat_module

    monkeypatch.setattr(sat_module, "_LUBY_UNIT", 2)
    num_vars, clauses = 12, []
    rng = random.Random(3)
    clauses = _random_instance(rng, num_vars, 40)
    solver = DpllSolver(num_vars=num_vars, clauses=clauses)
    verdict, model = solver.solve()
    expected = _brute_force(num_vars, clauses)
    assert (verdict == "sat") == (expected is not None)
    if solver.stats.conflicts >= 4:
        assert solver.stats.restarts > 1, "Luby restarts never fired"


# ----------------------------------------------------------------------
# Assumptions
# ----------------------------------------------------------------------
def test_assumptions_agree_with_assumption_units():
    rng = random.Random(11)
    saw_unsat_with_core = 0
    for round_index in range(60):
        num_vars = rng.randint(4, 7)
        clauses = _random_instance(rng, num_vars, rng.randint(5, 16))
        count = rng.randint(1, 3)
        assumptions = tuple(
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), count)
        )
        solver = DpllSolver(num_vars=num_vars, clauses=clauses)
        verdict, model = solver.solve(assumptions=assumptions)

        expected = _brute_force(
            num_vars, list(clauses) + [(a,) for a in assumptions]
        )
        assert (verdict == "sat") == (expected is not None), (
            f"round {round_index}: {verdict} under {assumptions}"
        )
        if verdict == "sat":
            for assumption in assumptions:
                assert model[abs(assumption)] == (assumption > 0)
            assert all(_satisfies(model, c) for c in clauses)
            assert solver.failed_assumptions == frozenset()
        else:
            failed = solver.failed_assumptions
            assert failed <= set(assumptions), (failed, assumptions)
            # The failed set is a genuine core: clauses + failed alone
            # are still unsatisfiable.
            assert _brute_force(
                num_vars, list(clauses) + [(a,) for a in sorted(failed)]
            ) is None
            if failed:
                saw_unsat_with_core += 1
            # And solving under only the failed assumptions reproduces
            # the verdict on the engine itself.
            assert solver.solve(assumptions=sorted(failed))[0] == "unsat"
    assert saw_unsat_with_core > 0, "assumption cores were never exercised"


def test_failed_assumptions_empty_when_unsat_without_them():
    solver = DpllSolver(num_vars=2, clauses=[(1,), (-1,)])
    verdict, _ = solver.solve(assumptions=(2,))
    assert verdict == "unsat"
    assert solver.failed_assumptions == frozenset()


def test_single_false_assumption_is_its_own_core():
    solver = DpllSolver(num_vars=2, clauses=[(1,)])
    verdict, _ = solver.solve(assumptions=(-1,))
    assert verdict == "unsat"
    assert solver.failed_assumptions == frozenset({-1})


def test_retracting_a_unit_purges_dependent_learned_clauses():
    # 1UIP analysis drops level-0 literals, so a clause learned while the
    # root unit (1,) is asserted may only be implied *together with* that
    # unit.  Retracting the unit must purge the derived clauses — keeping
    # them once made this satisfiable instance answer unsat.
    solver = DpllSolver(num_vars=3, clauses=[(1,), (-1, -2, 3), (-1, -2, -3)])
    assert solver.solve()[0] == "sat"
    solver.remove_unit(1)
    solver.add_clause((2,))
    verdict, model = solver.solve()
    assert verdict == "sat"  # 1=False, 2=True satisfies everything
    assert model[2] is True and model[1] is False


def test_asserting_a_derived_unit_makes_it_permanent():
    # If the engine first *learns* a unit and the caller later asserts the
    # same unit, a purge of the derived set must not drop the assertion.
    solver = DpllSolver(num_vars=3, clauses=[(1,), (-1, -2, 3), (-1, -2, -3)])
    assert solver.solve()[0] == "sat"  # learns the unit (-2,)
    solver.add_clause((-2,))  # now also asserted
    solver.remove_unit(1)  # triggers a purge of derived clauses
    assert solver.solve()[0] == "sat"
    assert solver.has_unit(-2)
    solver.add_clause((2,))
    assert solver.solve()[0] == "unsat"  # (-2,) must still be in force


def test_unsupported_assumption_reports_unknown():
    from repro.lia import const, exists, ge, le, var as lvar

    solver = LiaSolver()
    solver.add_assertion(ge(lvar("x"), 0))
    quantified = exists(("z",), le(const(1), 0))
    result = solver.check(assumptions=[("q", quantified)])
    assert result.status is LiaStatus.UNKNOWN
    assert "assumption" in result.reason


def test_assumptions_do_not_persist_between_solves():
    solver = DpllSolver(num_vars=2, clauses=[(1, 2)])
    assert solver.solve(assumptions=(-1, -2))[0] == "unsat"
    assert solver.solve()[0] == "sat"


# ----------------------------------------------------------------------
# LiaSolver-level assumption cores
# ----------------------------------------------------------------------
def test_lia_assumption_cores_are_rechecked_unsat():
    x, y = var("x"), var("y")
    solver = LiaSolver()
    solver.add_assertion(ge(x, 0))
    labelled = [
        ("ub", le(x, 5)),
        ("noise", ge(y, 3)),
        ("lb", ge(x, 10)),
    ]
    result = solver.check(assumptions=labelled)
    assert result.status is LiaStatus.UNSAT
    assert set(result.core_labels) <= {"ub", "noise", "lb"}
    assert "noise" not in result.core_labels
    # Re-check under only the core assumptions: still unsat.
    core = [pair for pair in labelled if pair[0] in result.core_labels]
    assert solver.check(assumptions=core).status is LiaStatus.UNSAT
    # And the stack alone is satisfiable again.
    assert solver.check().status is LiaStatus.SAT


def test_lia_core_labels_empty_when_stack_is_unsat():
    x = var("x")
    solver = LiaSolver()
    solver.add_assertion(conj([ge(x, 1), le(x, 0)]))
    result = solver.check(assumptions=[("a", ge(var("y"), 0))])
    assert result.status is LiaStatus.UNSAT
    assert result.core_labels == ()


def test_lia_trivially_false_assumption_is_the_core():
    x, y = var("x"), var("y")
    solver = LiaSolver()
    solver.add_assertion(ge(x, 0))
    result = solver.check(
        assumptions=[("fine", ge(y, 0)), ("impossible", conj([ge(y, 1), le(y, 0)]))]
    )
    assert result.status is LiaStatus.UNSAT
    assert result.core_labels == ("impossible",)


def test_lia_assumption_cores_with_disjunctions():
    x = var("x")
    solver = LiaSolver()
    solver.add_assertion(conj([ge(x, 0), le(x, 10)]))
    result = solver.check(
        assumptions=[
            ("split", ne(x, 0) | ge(x, 4)),
            ("cap", le(x, 3)),
            ("pin", conj([ge(x, 0), le(x, 0)])),
        ]
    )
    assert result.status is LiaStatus.UNSAT
    # split + pin alone conflict (x = 0 falsifies both disjuncts);
    # whichever core comes back must re-check unsat.
    core = [("split", ne(x, 0) | ge(x, 4)), ("cap", le(x, 3)),
            ("pin", conj([ge(x, 0), le(x, 0)]))]
    core = [pair for pair in core if pair[0] in result.core_labels]
    assert core, "empty core for an assumption-driven conflict"
    assert solver.check(assumptions=core).status is LiaStatus.UNSAT


def test_stats_expose_cdcl_counters():
    x = var("x")
    solver = LiaSolver()
    solver.add_assertion(conj([ge(x, 0), le(x, 8), ne(x, 0), ne(x, 1), ne(x, 2)]))
    result = solver.check()
    assert result.status is LiaStatus.SAT
    for key in ("backjump_levels", "deleted_clauses", "minimized_literals",
                "conflicts", "learned_clauses", "restarts"):
        assert key in result.stats
