"""Tests for the extended string functions (substr/indexof/replace).

Three layers:

* the concrete SMT-LIB 2.6 semantics helpers (``str_substr`` & co.) against
  the edge-case table of the spec,
* per-function unit tests of the reduction through the full solver
  (in-range / out-of-range / empty-needle cases, both polarities, unsat
  cores mapping back through the case provenance),
* randomized differential checks of the solver against the brute-force
  oracle, which evaluates the extended atoms directly via
  :mod:`repro.strings.semantics` (no reduction involved).
"""

import random

import pytest

from repro import (
    IndexOfAtom,
    LengthConstraint,
    Problem,
    PositionSolver,
    RegexMembership,
    ReplaceAtom,
    Session,
    SolverConfig,
    Status,
    SubstrAtom,
    WordEquation,
    lit,
    str_len,
    term,
)
from repro.lia import LinExpr, eq, ge, le, ne
from repro.solver import brute_force_check
from repro.strings.reductions import (
    ReductionError,
    needs_reduction,
    reduce_problem,
)
from repro.strings.semantics import (
    eval_problem,
    str_indexof,
    str_replace,
    str_substr,
)

CONFIG = SolverConfig(timeout=30.0)


def check(problem):
    return PositionSolver(CONFIG).check(problem)


def const(value):
    return LinExpr.constant(value)


# ----------------------------------------------------------------------
# Concrete semantics (the SMT-LIB 2.6 edge-case table)
# ----------------------------------------------------------------------
def test_substr_semantics_table():
    assert str_substr("abcde", 1, 2) == "bc"
    assert str_substr("abcde", 0, 5) == "abcde"
    assert str_substr("abcde", 3, 10) == "de"  # length clamps to the end
    assert str_substr("abcde", 5, 1) == ""  # offset == |s| is out of range
    assert str_substr("abcde", -1, 2) == ""  # negative offset
    assert str_substr("abcde", 2, 0) == ""  # non-positive length
    assert str_substr("abcde", 2, -3) == ""
    assert str_substr("", 0, 1) == ""


def test_indexof_semantics_table():
    assert str_indexof("abab", "ab", 0) == 0
    assert str_indexof("abab", "ab", 1) == 2
    assert str_indexof("abab", "ba", 0) == 1
    assert str_indexof("abab", "bb", 0) == -1
    assert str_indexof("abab", "", 2) == 2  # empty needle: the offset
    assert str_indexof("abab", "", 4) == 4  # ... up to |s| inclusive
    assert str_indexof("abab", "ab", -1) == -1  # invalid offsets
    assert str_indexof("abab", "ab", 5) == -1
    assert str_indexof("abab", "", 5) == -1


def test_replace_semantics_table():
    assert str_replace("abab", "ab", "c") == "cab"  # first occurrence only
    assert str_replace("abab", "bb", "c") == "abab"  # absent: unchanged
    assert str_replace("abab", "", "c") == "cabab"  # empty needle: prepend
    assert str_replace("", "", "c") == "c"
    assert str_replace("abab", "abab", "") == ""


# ----------------------------------------------------------------------
# str.substr through the solver
# ----------------------------------------------------------------------
def test_substr_constant_in_range():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(SubstrAtom(term("t"), term(lit("abab")), const(1), const(2)))
    result = check(problem)
    assert result.status is Status.SAT
    assert result.model.strings["t"] == "ba"


def test_substr_length_clamps_to_the_end():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(SubstrAtom(term("t"), term(lit("abab")), const(2), const(10)))
    result = check(problem)
    assert result.status is Status.SAT
    assert result.model.strings["t"] == "ab"


@pytest.mark.parametrize("offset,length", [(5, 1), (-1, 2), (0, 0), (0, -2), (4, 1)])
def test_substr_out_of_range_is_empty(offset, length):
    problem = Problem(alphabet=tuple("ab"))
    problem.add(SubstrAtom(term("t"), term(lit("abab")), const(offset), const(length)))
    problem.add(LengthConstraint(ge(str_len("t"), 1)))
    assert check(problem).status is Status.UNSAT


def test_substr_symbolic_haystack():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(LengthConstraint(ge(str_len("x"), 4)))
    problem.add(SubstrAtom(term("t"), term("x"), const(1), const(2)))
    result = check(problem)
    assert result.status is Status.SAT
    model = result.model.strings
    assert model["t"] == str_substr(model["x"], 1, 2) == "ba"


def test_substr_symbolic_offset():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "aab*"))
    problem.add(SubstrAtom(term("t"), term("x"), LinExpr.var("i"), const(1)))
    problem.add(WordEquation(term("t"), term(lit("b"))))
    result = check(problem)
    assert result.status is Status.SAT
    model = result.model
    assert str_substr(model.strings["x"], model.integers["i"], 1) == "b"


def test_substr_negative_polarity():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("t", "a"))
    problem.add(
        SubstrAtom(term("t"), term(lit("ab")), const(0), const(1), positive=False)
    )
    assert check(problem).status is Status.UNSAT


# ----------------------------------------------------------------------
# str.indexof through the solver
# ----------------------------------------------------------------------
def test_indexof_first_occurrence():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(IndexOfAtom(LinExpr.var("k"), term(lit("abab")), term(lit("ba")), const(0)))
    problem.add(LengthConstraint(eq(LinExpr.var("k"), 1)))
    assert check(problem).status is Status.SAT
    # ... and any other position is refuted: the index is *the first*.
    problem = Problem(alphabet=tuple("ab"))
    problem.add(IndexOfAtom(LinExpr.var("k"), term(lit("abab")), term(lit("ba")), const(0)))
    problem.add(LengthConstraint(eq(LinExpr.var("k"), 3)))
    assert check(problem).status is Status.UNSAT


def test_indexof_not_found_is_minus_one():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(IndexOfAtom(LinExpr.var("k"), term(lit("aaa")), term(lit("b")), const(0)))
    problem.add(LengthConstraint(eq(LinExpr.var("k"), -1)))
    assert check(problem).status is Status.SAT
    problem = Problem(alphabet=tuple("ab"))
    problem.add(IndexOfAtom(LinExpr.var("k"), term(lit("aaa")), term(lit("b")), const(0)))
    problem.add(LengthConstraint(ge(LinExpr.var("k"), 0)))
    assert check(problem).status is Status.UNSAT


def test_indexof_empty_needle_returns_the_offset():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(IndexOfAtom(LinExpr.var("k"), term(lit("ab")), (), const(1)))
    problem.add(LengthConstraint(eq(LinExpr.var("k"), 1)))
    assert check(problem).status is Status.SAT
    problem = Problem(alphabet=tuple("ab"))
    problem.add(IndexOfAtom(LinExpr.var("k"), term(lit("ab")), (), const(1)))
    problem.add(LengthConstraint(ne(LinExpr.var("k"), 1)))
    assert check(problem).status is Status.UNSAT


def test_indexof_out_of_range_offset():
    for offset in (-1, 5):
        problem = Problem(alphabet=tuple("ab"))
        problem.add(
            IndexOfAtom(LinExpr.var("k"), term(lit("ab")), term(lit("a")), const(offset))
        )
        problem.add(LengthConstraint(eq(LinExpr.var("k"), -1)))
        assert check(problem).status is Status.SAT


def test_indexof_symbolic_haystack_forces_structure():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(a|b)*"))
    problem.add(IndexOfAtom(LinExpr.var("k"), term("x"), term(lit("b")), const(0)))
    problem.add(LengthConstraint(eq(LinExpr.var("k"), 2)))
    result = check(problem)
    assert result.status is Status.SAT
    assert str_indexof(result.model.strings["x"], "b", 0) == 2


def test_indexof_variable_needle_flat_languages():
    # A variable needle leaves the regular encoding and exercises the
    # ¬contains MBQI side condition (flat languages, so it stays exact).
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("n", "a*"))
    problem.add(LengthConstraint(eq(str_len("n"), 1)))
    problem.add(IndexOfAtom(LinExpr.var("k"), term("x"), term("n"), const(0)))
    problem.add(LengthConstraint(eq(LinExpr.var("k"), 0)))
    problem.add(LengthConstraint(ge(str_len("x"), 2)))
    result = check(problem)
    assert result.status is Status.SAT
    model = result.model
    assert str_indexof(model.strings["x"], model.strings["n"], 0) == 0


# ----------------------------------------------------------------------
# str.replace through the solver
# ----------------------------------------------------------------------
def test_replace_first_occurrence_only():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(ReplaceAtom(term("t"), term(lit("abab")), term(lit("ab")), term(lit("b"))))
    result = check(problem)
    assert result.status is Status.SAT
    assert result.model.strings["t"] == "bab"


def test_replace_absent_needle_keeps_haystack():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(ReplaceAtom(term("t"), term(lit("aa")), term(lit("b")), term(lit("a"))))
    problem.add(WordEquation(term("t"), term(lit("aa"))))
    assert check(problem).status is Status.SAT


def test_replace_empty_needle_prepends():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(ReplaceAtom(term("t"), term(lit("aa")), (), term(lit("b"))))
    problem.add(WordEquation(term("t"), term(lit("baa"))))
    assert check(problem).status is Status.SAT
    problem = Problem(alphabet=tuple("ab"))
    problem.add(ReplaceAtom(term("t"), term(lit("aa")), (), term(lit("b"))))
    problem.add(WordEquation(term("t"), term(lit("aa"))))
    assert check(problem).status is Status.UNSAT


def test_replace_fixed_point_means_needle_absent():
    # t = replace(x, "a", "b") with t = x forces "a" not to occur in x:
    # replacing a first occurrence would change the character.
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(a|b)*"))
    problem.add(ReplaceAtom(term("x"), term("x"), term(lit("a")), term(lit("b"))))
    problem.add(LengthConstraint(ge(str_len("x"), 2)))
    result = check(problem)
    assert result.status is Status.SAT
    assert "a" not in result.model.strings["x"]


def test_replace_symbolic_round_trip():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)+"))
    problem.add(ReplaceAtom(term("t"), term("x"), term(lit("ab")), term(lit("b"))))
    problem.add(LengthConstraint(ge(str_len("x"), 4)))
    result = check(problem)
    assert result.status is Status.SAT
    model = result.model.strings
    assert model["t"] == str_replace(model["x"], "ab", "b")


# ----------------------------------------------------------------------
# Reduction mechanics: expansion, provenance, model hygiene
# ----------------------------------------------------------------------
def test_needs_reduction():
    plain = Problem(alphabet=tuple("ab"))
    plain.add(WordEquation(term("x"), term(lit("a"))))
    assert not needs_reduction(plain)
    extended = Problem(alphabet=tuple("ab"))
    extended.add(SubstrAtom(term("t"), term("x"), const(0), const(1)))
    assert needs_reduction(extended)


def test_reduce_problem_case_counts():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(SubstrAtom(term("t"), term("x"), const(0), const(1)))
    assert len(reduce_problem(problem)) == 1
    problem.add(IndexOfAtom(LinExpr.var("k"), term("x"), term("n"), const(0)))
    assert len(reduce_problem(problem)) == 4
    problem.add(ReplaceAtom(term("r"), term("x"), term("n"), term(lit("b"))))
    assert len(reduce_problem(problem)) == 12
    with pytest.raises(ReductionError):
        reduce_problem(problem, max_cases=8)


def test_reduce_problem_provenance_points_at_the_input_atom():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(WordEquation(term("x"), term(lit("ab"))))
    problem.add(SubstrAtom(term("t"), term("x"), const(0), const(1)))
    for case in reduce_problem(problem):
        assert len(case.provenance) == len(case.problem.atoms)
        assert set(case.provenance) == {0, 1}
        # every atom of the expansion of atom 1 carries provenance 1
        assert case.provenance[0] == 0


def test_models_do_not_leak_reduction_variables():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(LengthConstraint(ge(str_len("x"), 2)))
    problem.add(SubstrAtom(term("t"), term("x"), const(0), const(1)))
    result = check(problem)
    assert result.status is Status.SAT
    assert not any(name.startswith(".r") for name in result.model.strings)


def test_unsat_core_maps_back_to_input_atoms():
    session = Session(config=CONFIG, alphabet=tuple("ab"))
    session.add(RegexMembership("bystander", "(ab)*"), name="bystander")
    session.add(RegexMembership("x", "(ab)*"), name="mx")
    session.add(SubstrAtom(term("t"), term("x"), const(0), const(1)), name="def-t")
    session.add(LengthConstraint(ge(str_len("x"), 2)), name="xlong")
    session.add(WordEquation(term("t"), term(lit("b"))), name="t-is-b")
    result = session.check()
    assert result.status is Status.UNSAT
    core = session.unsat_core()
    assert "bystander" not in core
    assert "def-t" in core and "t-is-b" in core


def test_extended_atoms_in_session_push_pop():
    session = Session(config=CONFIG, alphabet=tuple("ab"))
    session.add(RegexMembership("x", "(ab)*"))
    session.add(SubstrAtom(term("t"), term("x"), const(0), const(2)))
    session.add(LengthConstraint(ge(str_len("x"), 2)))
    assert session.check().status is Status.SAT
    session.push()
    session.add(WordEquation(term("t"), term(lit("ba"))))
    assert session.check().status is Status.UNSAT
    session.pop()
    assert session.check().status is Status.SAT


# ----------------------------------------------------------------------
# Differential testing vs the brute-force oracle
# ----------------------------------------------------------------------
def _random_term(rng, variables):
    elements = []
    for _ in range(rng.randint(1, 2)):
        if rng.random() < 0.5:
            elements.append(variables[rng.randrange(len(variables))])
        else:
            word = "".join(rng.choice("ab") for _ in range(rng.randint(0, 2)))
            elements.append(lit(word))
    return term(*elements)


def _random_extended_problem(rng):
    problem = Problem(alphabet=tuple("ab"))
    variables = ["x", "y"]
    # keep the search space finite so the oracle can enumerate it
    problem.add(RegexMembership("x", "(a|b){0,3}"))
    problem.add(RegexMembership("y", "(a|b){0,2}"))
    kind = rng.randrange(3)
    if kind == 0:
        problem.add(
            SubstrAtom(
                term("y"),
                _random_term(rng, variables),
                const(rng.randint(-1, 3)),
                const(rng.randint(-1, 3)),
                positive=rng.random() < 0.8,
            )
        )
    elif kind == 1:
        problem.add(
            IndexOfAtom(
                LinExpr.var("k"),
                _random_term(rng, variables),
                term(lit("".join(rng.choice("ab") for _ in range(rng.randint(0, 2))))),
                const(rng.randint(-1, 3)),
            )
        )
        problem.add(LengthConstraint(eq(LinExpr.var("k"), rng.randint(-1, 3))))
    else:
        problem.add(
            ReplaceAtom(
                term("y"),
                _random_term(rng, ["x"]),
                term(lit("".join(rng.choice("ab") for _ in range(rng.randint(0, 2))))),
                term(lit(rng.choice(["", "a", "b"]))),
                positive=rng.random() < 0.8,
            )
        )
    return problem


@pytest.mark.parametrize("seed", range(40))
def test_differential_vs_brute_force(seed):
    rng = random.Random(seed)
    problem = _random_extended_problem(rng)
    oracle = brute_force_check(problem, max_length=4, integer_bounds=(-2, 5))
    verdict = check(problem)
    if oracle.status is Status.SAT:
        assert verdict.status in (Status.SAT, Status.UNKNOWN, Status.TIMEOUT), (
            f"solver {verdict.status} but oracle found {oracle.model.strings}"
        )
        if verdict.status is Status.SAT:
            assert eval_problem(
                problem, verdict.model.strings, verdict.model.integers
            )
    elif oracle.status is Status.UNSAT:
        assert verdict.status in (Status.UNSAT, Status.UNKNOWN, Status.TIMEOUT)
    if verdict.status is Status.SAT:
        # any SAT must be a real model regardless of the oracle's verdict
        assert eval_problem(problem, verdict.model.strings, verdict.model.integers)
