"""Differential tests for the integer-dense automata core.

Randomized NFAs (with ε-loops, dead states, and >64-state blocks that force
multi-word bitsets) are run through both the dense implementations in
``repro.automata.operations``/``repro.automata.dense`` and the pre-rewrite
set-based oracles kept in ``repro.automata.legacy``; languages and verdicts
must coincide.  Serialization round-trips and the interning-identity
contract are covered at the end.
"""

import random

import pytest

from repro.automata import legacy as leg
from repro.automata import operations as ops
from repro.automata.dense import (
    DenseNfa,
    as_dense,
    as_nfa,
    intern_nfa,
    iter_bits,
    product_is_empty,
)
from repro.automata.enumeration import count_words_of_length, words_up_to
from repro.automata.minimization import canonical_signature, minimize
from repro.automata.nfa import EPSILON, Nfa
from repro.automata.serialization import dense_from_dict, dense_to_dict, from_dict, to_dict
from repro.budget import Budget, BudgetExceeded


def random_nfa(rng, n_states, symbols="ab", eps_prob=0.15, density=3.0):
    """A random NFA: ε-loops and dead states arise naturally from sparsity."""
    nfa = Nfa(set(symbols))
    states = [nfa.add_state() for _ in range(n_states)]
    for _ in range(rng.randint(1, int(density * n_states))):
        src, dst = rng.choice(states), rng.choice(states)
        if rng.random() < eps_prob:
            nfa.add_transition(src, EPSILON, dst)
        else:
            nfa.add_transition(src, rng.choice(symbols), dst)
    for _ in range(rng.randint(1, 2)):
        nfa.make_initial(rng.choice(states))
    for _ in range(rng.randint(1, 2)):
        nfa.make_final(rng.choice(states))
    return nfa


def language(nfa, max_length=4):
    return set(words_up_to(nfa, max_length))


# ----------------------------------------------------------------------
# Differential properties on small random automata
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(40))
def test_differential_small(seed):
    rng = random.Random(seed)
    a = random_nfa(rng, rng.randint(2, 8))
    b = random_nfa(rng, rng.randint(2, 8))

    assert language(ops.remove_epsilon(a)) == language(leg.legacy_remove_epsilon(a))

    dense_dfa, dense_map = ops.determinize(a, "ab")
    legacy_dfa, legacy_map = leg.legacy_determinize(a, "ab")
    assert language(dense_dfa) == language(legacy_dfa)
    # The subset map's key set is the same (values are numberings).
    assert set(dense_map) == set(legacy_map)
    # The DFA is complete and deterministic over the requested alphabet.
    for state in dense_dfa.states:
        for symbol in "ab":
            assert len(dense_dfa.successors(state, symbol)) == 1

    assert language(ops.intersection(a, b)) == language(leg.legacy_intersection(a, b))
    assert ops.intersection_empty(a, b) == leg.legacy_intersection_empty(a, b)
    assert ops.is_subset(a, b, "ab") == leg.legacy_is_subset(a, b, "ab")
    assert a.is_empty() == leg.legacy_is_empty(a)
    assert language(a.trim()) == language(leg.legacy_trim(a))
    assert language(ops.complement(a, "ab"), 3) == language(leg.legacy_complement(a, "ab"), 3)
    for word in ("", "a", "b", "ab", "ba", "aab", "bab"):
        assert a.accepts(word) == leg.legacy_accepts(a, word)


@pytest.mark.parametrize("seed", range(10))
def test_differential_large_blocks(seed):
    """>64 states: bitsets span multiple machine words."""
    rng = random.Random(1000 + seed)
    a = random_nfa(rng, rng.randint(70, 100), density=2.0)
    b = random_nfa(rng, rng.randint(70, 100), density=2.0)
    assert a.dense().n > 64

    assert a.is_empty() == leg.legacy_is_empty(a)
    assert a.reachable_states() == leg.legacy_reachable_states(a)
    assert a.coreachable_states() == leg.legacy_coreachable_states(a)
    assert language(a.trim(), 3) == language(leg.legacy_trim(a), 3)
    assert ops.intersection_empty(a, b) == leg.legacy_intersection_empty(a, b)
    assert language(ops.remove_epsilon(a), 3) == language(leg.legacy_remove_epsilon(a), 3)


@pytest.mark.parametrize("seed", range(10))
def test_differential_parikh_style_counts(seed):
    """Word counts per length (the Parikh-image proxy the oracle uses)."""
    rng = random.Random(2000 + seed)
    a = random_nfa(rng, rng.randint(2, 7))
    legacy_dfa, _ = leg.legacy_determinize(a, a.alphabet or {"a"})
    for length in range(4):
        expected = sum(1 for w in set(words_up_to(legacy_dfa, 4)) if len(w) == length)
        assert count_words_of_length(a, length) == expected


def test_minimize_and_signature_agree_with_language():
    rng = random.Random(42)
    for _ in range(15):
        a = random_nfa(rng, rng.randint(2, 7))
        minimal = minimize(a, "ab")
        assert language(minimal) == language(a)
        b = ops.union(a, Nfa.empty_language())
        assert canonical_signature(a, "ab") == canonical_signature(b, "ab")


# ----------------------------------------------------------------------
# Dense form specifics
# ----------------------------------------------------------------------
def test_with_endpoints_matches_segment_copy():
    rng = random.Random(7)
    nfa = leg.legacy_remove_epsilon(random_nfa(rng, 6))
    dense = nfa.dense()
    states = sorted(nfa.states)
    for src in states[:3]:
        for dst in states[:3]:
            view = dense.with_endpoints(
                1 << dense.index[src], 1 << dense.index[dst]
            )
            segment = nfa.copy()
            segment.initial = {src}
            segment.final = {dst}
            assert language(as_nfa(view)) == language(segment)


def test_product_is_empty_epsilon_word():
    # Both sides accept exactly ε through different structures.
    left = Nfa.epsilon_language()
    right = Nfa.from_word("")
    assert not product_is_empty(left, right)
    assert not product_is_empty(as_dense(left), as_dense(right))


def test_dense_cache_invalidated_on_mutation():
    nfa = Nfa.from_word("ab")
    assert nfa.accepts("ab")
    first = nfa.dense()
    state = nfa.add_state()
    nfa.make_final(state)
    assert nfa.dense() is not first
    # Direct endpoint assignment (the noodler segment idiom) must also
    # invalidate — including on copies sharing the dense form.
    clone = nfa.copy()
    clone.initial = set(nfa.final)
    assert clone.dense() is not nfa.dense()


def test_budget_steps_bound_dense_determinize():
    # An automaton whose subset construction explodes must hit the step
    # limit instead of running to completion.
    rng = random.Random(3)
    nfa = random_nfa(rng, 14, symbols="ab", eps_prob=0.0, density=6.0)
    budget = Budget(None, max_steps=5)
    with budget.activate():
        with pytest.raises(BudgetExceeded):
            ops.determinize(nfa, "ab")


def test_step_limit_determinism():
    """Same step cap ⇒ same failure point, run after run."""
    rng = random.Random(5)
    nfa = random_nfa(rng, 12, eps_prob=0.0, density=6.0)

    def steps_at_failure(cap):
        budget = Budget(None, max_steps=cap)
        with budget.activate():
            try:
                ops.determinize(nfa.copy(), "ab")
            except BudgetExceeded:
                return ("exceeded", budget.steps)
        return ("done", budget.steps)

    assert steps_at_failure(7) == steps_at_failure(7)
    assert steps_at_failure(50) == steps_at_failure(50)


# ----------------------------------------------------------------------
# Serialization round-trips
# ----------------------------------------------------------------------
def test_transition_list_roundtrip_unchanged():
    rng = random.Random(11)
    nfa = random_nfa(rng, 5)
    back = from_dict(to_dict(nfa))
    assert language(back) == language(nfa)


def test_dense_roundtrip_is_interned():
    rng = random.Random(13)
    nfa = random_nfa(rng, 6)
    payload = dense_to_dict(nfa)
    loaded = from_dict(payload)
    assert language(loaded) == language(nfa)
    # Loading twice yields the same canonical object...
    assert from_dict(dense_to_dict(nfa)) is loaded
    # ...which is exactly what interning the live automaton returns.
    assert intern_nfa(nfa) is loaded
    assert dense_from_dict(payload) is loaded


def test_dense_payload_is_json_compatible():
    import json

    rng = random.Random(17)
    nfa = random_nfa(rng, 80, density=2.0)  # multi-word masks
    payload = dense_to_dict(nfa)
    wire = json.dumps(payload)
    assert language(from_dict(json.loads(wire)), 3) == language(nfa, 3)


# ----------------------------------------------------------------------
# Interning contract
# ----------------------------------------------------------------------
def test_interning_identity_modulo_renaming():
    rng = random.Random(19)
    nfa = random_nfa(rng, 6)
    renamed, _ = nfa.renumbered(100)
    assert intern_nfa(nfa) is intern_nfa(renamed)
    assert intern_nfa(nfa) is intern_nfa(nfa.copy())


def test_interning_distinguishes_declared_alphabet():
    # Same structure, different declared alphabet: complementation differs,
    # so these must NOT be identified.
    a = Nfa.from_word("a")
    b = Nfa.from_word("a")
    b_wide = ops.union(b, Nfa.empty_language())
    b_wide._alphabet.add("c")
    assert intern_nfa(a) is not intern_nfa(b_wide)


def test_interned_canonical_key_matches_dense():
    rng = random.Random(23)
    nfa = random_nfa(rng, 5)
    canonical = intern_nfa(nfa)
    assert canonical.dense().canonical_key() == nfa.dense().canonical_key()
    assert isinstance(canonical.dense(), DenseNfa)


def test_iter_bits():
    assert list(iter_bits(0)) == []
    assert list(iter_bits(0b1011)) == [0, 1, 3]
    big = (1 << 200) | (1 << 64) | 1
    assert list(iter_bits(big)) == [0, 64, 200]
