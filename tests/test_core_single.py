"""Tests for the single-predicate encodings (§5.1, §5.2, §6.2, §6.3).

Every SAT verdict is validated by reconstructing a witness and evaluating
the predicate directly; every UNSAT verdict is cross-checked against bounded
brute-force enumeration of the variable languages.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Nfa, compile_regex
from repro.core.predicates import Disequality, NotPrefixOf, NotSuffixOf, StrAt
from repro.core.single import encode_single
from repro.core.witness import extract_assignment
from repro.lia import LinExpr, conj, eq

from helpers import brute_force_predicates, solve_lia


def check_single(predicate, automata, extra=None, integer_ranges=None, max_length=4):
    """Encode, solve, and cross-check a single predicate against brute force."""
    encoding = encode_single(predicate, automata)
    formula = encoding.formula if extra is None else conj([encoding.formula] + extra)
    result = solve_lia(formula, timeout=60.0)
    oracle = brute_force_predicates([predicate], automata, max_length=max_length,
                                    integer_ranges=integer_ranges)
    if result.is_sat:
        strings = extract_assignment(encoding.parikh, result.model, list(automata))
        assert strings is not None, "could not reconstruct a witness from the Parikh model"
        for name, nfa in automata.items():
            assert nfa.accepts(strings[name]), f"witness violates the regular constraint of {name}"
        integers = {name: result.model.get(name, 0) for name in getattr(predicate, "integer_variables", tuple)()} \
            if hasattr(predicate, "integer_variables") else {}
        assert predicate.holds(strings, integers), f"witness {strings} does not satisfy {predicate}"
    else:
        assert oracle is None, f"encoding says UNSAT but brute force found {oracle}"
    return result


# ----------------------------------------------------------------------
# §5.1: a single disequality of two variables
# ----------------------------------------------------------------------
def test_diseq_two_vars_sat_different_languages():
    automata = {"x": compile_regex("(ab)*", alphabet="abc"), "y": compile_regex("(ac)*", alphabet="abc")}
    result = check_single(Disequality(("x",), ("y",)), automata)
    assert result.is_sat


def test_diseq_two_vars_unsat_singleton_languages():
    automata = {"x": compile_regex("ab", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    result = check_single(Disequality(("x",), ("y",)), automata)
    assert result.is_unsat


def test_diseq_two_vars_sat_by_length():
    automata = {"x": compile_regex("aa", alphabet="ab"), "y": compile_regex("aaa", alphabet="ab")}
    result = check_single(Disequality(("x",), ("y",)), automata)
    assert result.is_sat


def test_diseq_same_variable_both_sides_unsat():
    automata = {"x": compile_regex("(a|b){1,2}", alphabet="ab")}
    result = check_single(Disequality(("x",), ("x",)), automata)
    assert result.is_unsat


# ----------------------------------------------------------------------
# §5.2: unrestricted disequalities (concatenations, repeated variables)
# ----------------------------------------------------------------------
def test_diseq_concatenation_sat():
    automata = {
        "x": compile_regex("a*", alphabet="ab"),
        "y": compile_regex("b*", alphabet="ab"),
        "z": compile_regex("(a|b)*", alphabet="ab"),
    }
    result = check_single(Disequality(("x", "y"), ("z",)), automata)
    assert result.is_sat


def test_diseq_xy_vs_yx_commuting_unsat():
    # x in a*, y in a*: xy = yx always, so xy != yx is unsatisfiable.
    automata = {"x": compile_regex("a*", alphabet="ab"), "y": compile_regex("a*", alphabet="ab")}
    result = check_single(Disequality(("x", "y"), ("y", "x")), automata)
    assert result.is_unsat


def test_diseq_xy_vs_yx_sat_with_two_letters():
    automata = {"x": compile_regex("a*", alphabet="ab"), "y": compile_regex("b*", alphabet="ab")}
    result = check_single(Disequality(("x", "y"), ("y", "x")), automata)
    assert result.is_sat


def test_diseq_repeated_variable_fixed_point_unsat():
    # x constrained to a single word: xx != xx is unsatisfiable.
    automata = {"x": compile_regex("ab", alphabet="ab")}
    result = check_single(Disequality(("x", "x"), ("x", "x")), automata)
    assert result.is_unsat


def test_diseq_paper_example_xyx_vs_yxy():
    automata = {
        "x": compile_regex("a", alphabet="ab"),
        "y": compile_regex("a|b", alphabet="ab"),
    }
    result = check_single(Disequality(("x", "y", "x"), ("y", "x", "y")), automata)
    assert result.is_sat


def test_diseq_against_literal_encoded_as_variable():
    automata = {
        "x": compile_regex("(a|b){2}", alphabet="ab"),
        "lit": compile_regex("ab", alphabet="ab"),
    }
    result = check_single(Disequality(("x",), ("lit",)), automata)
    assert result.is_sat


def test_diseq_empty_language_is_unsat():
    automata = {"x": Nfa.empty_language(), "y": compile_regex("a", alphabet="a")}
    result = check_single(Disequality(("x",), ("y",)), automata)
    assert result.is_unsat


# ----------------------------------------------------------------------
# §6.2: ¬prefixof / ¬suffixof
# ----------------------------------------------------------------------
def test_not_prefixof_sat():
    automata = {"x": compile_regex("a(a|b)", alphabet="ab"), "y": compile_regex("ab(a|b)*", alphabet="ab")}
    result = check_single(NotPrefixOf(("x",), ("y",)), automata)
    assert result.is_sat


def test_not_prefixof_unsat_when_always_prefix():
    automata = {"x": compile_regex("a", alphabet="ab"), "y": compile_regex("a(a|b)*", alphabet="ab")}
    result = check_single(NotPrefixOf(("x",), ("y",)), automata)
    assert result.is_unsat


def test_not_prefixof_sat_by_length_overflow():
    automata = {"x": compile_regex("aaa", alphabet="ab"), "y": compile_regex("a{0,2}", alphabet="ab")}
    result = check_single(NotPrefixOf(("x",), ("y",)), automata)
    assert result.is_sat


def test_not_suffixof_sat():
    automata = {"x": compile_regex("ba", alphabet="ab"), "y": compile_regex("(a|b)*a", alphabet="ab")}
    result = check_single(NotSuffixOf(("x",), ("y",)), automata, max_length=3)
    assert result.is_sat


def test_not_suffixof_unsat_when_always_suffix():
    automata = {"x": compile_regex("a", alphabet="ab"), "y": compile_regex("(a|b)*a", alphabet="ab")}
    result = check_single(NotSuffixOf(("x",), ("y",)), automata, max_length=3)
    assert result.is_unsat


def test_not_suffixof_concatenation():
    automata = {
        "x": compile_regex("b", alphabet="ab"),
        "y": compile_regex("a*", alphabet="ab"),
        "z": compile_regex("b", alphabet="ab"),
    }
    # yz always ends with b = x, so ¬suffixof(x, yz) is unsatisfiable.
    result = check_single(NotSuffixOf(("x",), ("y", "z")), automata)
    assert result.is_unsat


# ----------------------------------------------------------------------
# §6.3: str.at / ¬str.at
# ----------------------------------------------------------------------
def test_str_at_positive_sat():
    automata = {"c": compile_regex("a|b", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    predicate = StrAt("c", ("y",), LinExpr.var("i"))
    encoding_result = check_single(predicate, automata, integer_ranges={"i": (-1, 3)})
    assert encoding_result.is_sat


def test_str_at_positive_fixed_index():
    automata = {"c": compile_regex("b", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    # y[1] = 'b' so c = str.at(y, 1) is satisfiable with c = b.
    predicate = StrAt("c", ("y",), 1)
    result = check_single(predicate, automata)
    assert result.is_sat


def test_str_at_positive_fixed_index_unsat():
    automata = {"c": compile_regex("a", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    # y[1] = 'b' but c is forced to 'a'.
    predicate = StrAt("c", ("y",), 1)
    result = check_single(predicate, automata)
    assert result.is_unsat


def test_str_at_out_of_bounds_requires_empty_target():
    automata = {"c": compile_regex("a?", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    predicate = StrAt("c", ("y",), 5)
    result = check_single(predicate, automata)
    assert result.is_sat  # c = ε works


def test_str_at_out_of_bounds_unsat_when_target_nonempty():
    automata = {"c": compile_regex("a", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    predicate = StrAt("c", ("y",), 5)
    result = check_single(predicate, automata)
    assert result.is_unsat


def test_not_str_at_sat():
    automata = {"c": compile_regex("a", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    predicate = StrAt("c", ("y",), 1, negated=True)
    result = check_single(predicate, automata)
    assert result.is_sat  # y[1] = b != a


def test_not_str_at_unsat():
    automata = {"c": compile_regex("a", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    predicate = StrAt("c", ("y",), 0, negated=True)
    result = check_single(predicate, automata)
    assert result.is_unsat  # y[0] = a = c always


def test_not_str_at_empty_target_in_bounds_is_sat():
    # Deviation test: ε != y[0], so the negated predicate holds with c = ε.
    automata = {"c": compile_regex("", alphabet="ab"), "y": compile_regex("ab", alphabet="ab")}
    predicate = StrAt("c", ("y",), 0, negated=True)
    result = check_single(predicate, automata)
    assert result.is_sat


# ----------------------------------------------------------------------
# Property-based: random small regular languages, disequality vs. brute force
# ----------------------------------------------------------------------
_regexes = st.sampled_from(
    ["a", "b", "ab", "a*", "b*", "(ab)*", "(a|b)", "(a|b)*", "a|b|ab", "a{0,2}", "(ba)*", "ab|ba"]
)


@settings(max_examples=25, deadline=None)
@given(_regexes, _regexes)
def test_random_disequality_agrees_with_bruteforce(rx, ry):
    automata = {"x": compile_regex(rx, alphabet="ab"), "y": compile_regex(ry, alphabet="ab")}
    predicate = Disequality(("x",), ("y",))
    encoding = encode_single(predicate, automata)
    result = solve_lia(encoding.formula, timeout=60.0)
    oracle = brute_force_predicates([predicate], automata, max_length=4)
    if oracle is not None:
        assert result.is_sat
    if result.is_sat:
        strings = extract_assignment(encoding.parikh, result.model, ["x", "y"])
        assert predicate.holds(strings)
        assert automata["x"].accepts(strings["x"])
        assert automata["y"].accepts(strings["y"])
    else:
        assert oracle is None
