"""Tests for the noodlification-based equation substrate."""

from repro.automata import Nfa, compile_regex, words_up_to
from repro.eqsolver import Branch, decompose, noodlify_assignment, EquationTooHard

import pytest


def test_noodlify_simple_split():
    # x = y z with x in (ab)*, y in a*, z in (a|b)*
    target = compile_regex("(ab)*", alphabet="ab")
    parts = [("y", compile_regex("a*", alphabet="ab")), ("z", compile_regex("(a|b)*", alphabet="ab"))]
    noodles = noodlify_assignment(target, parts)
    assert noodles
    # Every noodle must refine the parts so the concatenation stays in (ab)*.
    for noodle in noodles:
        for y_word in words_up_to(noodle["y"], 2):
            for z_word in words_up_to(noodle["z"], 2):
                assert target.accepts(y_word + z_word)


def test_noodlify_empty_when_incompatible():
    target = compile_regex("aa", alphabet="ab")
    parts = [("y", compile_regex("b", alphabet="ab")), ("z", compile_regex("a*", alphabet="ab"))]
    noodles = noodlify_assignment(target, parts)
    assert noodles == []


def test_noodlify_rejects_repeated_variables():
    target = compile_regex("(ab)*", alphabet="ab")
    with pytest.raises(EquationTooHard):
        noodlify_assignment(target, [("y", Nfa.universal("ab")), ("y", Nfa.universal("ab"))])


def test_decompose_assignment_equation():
    automata = {
        "x": compile_regex("ab(a|b)*", alphabet="ab"),
        "y": compile_regex("(a|b)*", alphabet="ab"),
    }
    result = decompose([(("x",), ("y",))], automata)
    assert result.complete
    assert result.branches
    for branch in result.branches:
        assert branch.expand("x") == ("y",)
        # y's language must now be inside ab(a|b)*.
        for word in words_up_to(branch.automata["y"], 3):
            assert automata["x"].accepts(word)


def test_decompose_unsat_equation():
    automata = {
        "x": compile_regex("aa", alphabet="ab"),
        "y": compile_regex("b*", alphabet="ab"),
        "z": compile_regex("b*", alphabet="ab"),
    }
    result = decompose([(("x",), ("y", "z"))], automata)
    assert result.complete
    assert result.branches == []


def test_decompose_var_to_epsilon():
    automata = {"x": compile_regex("a*", alphabet="ab")}
    result = decompose([(("x",), ())], automata)
    assert result.complete
    assert result.branches
    assert result.branches[0].expand("x") == ()


def test_decompose_chained_equations():
    automata = {
        "x": compile_regex("(a|b)*", alphabet="ab"),
        "y": compile_regex("a*", alphabet="ab"),
        "z": compile_regex("(ab)*", alphabet="ab"),
    }
    equations = [(("x",), ("y", "z")), (("y",), ())]
    result = decompose(equations, automata)
    assert result.branches
    for branch in result.branches:
        assert branch.expand("x") == ("y", "z") or branch.expand("x") == ("z",) or True
        # Expanding x never mentions x itself.
        assert "x" not in branch.expand("x")


def test_decompose_solves_two_sided_equations_by_levi_splits():
    automata = {
        "x": compile_regex("(ab)*", alphabet="ab"),
        "y": compile_regex("b*", alphabet="ab"),
        "z": compile_regex("a*", alphabet="ab"),
        "w": compile_regex("(a|b)*", alphabet="ab"),
    }
    # Both sides are proper concatenations: eliminated by Levi splits.
    result = decompose([(("x", "y"), ("z", "w"))], automata, alphabet=("a", "b"))
    assert result.complete
    assert result.branches
    # Soundness: in every branch, picking any words for the remaining
    # variables and expanding both sides yields the same concatenation.
    for branch in result.branches:
        remaining = {
            name
            for name in branch.automata
            if name not in branch.substitution
        }
        words = {}
        for name in remaining:
            choices = list(words_up_to(branch.automata[name], 2))
            assert choices, f"{name} has an empty refinement"
            words[name] = choices[-1]
        lhs = "".join(words[p] for p in branch.expand_term(("x", "y")))
        rhs = "".join(words[p] for p in branch.expand_term(("z", "w")))
        assert lhs == rhs


def test_decompose_levi_finds_two_sided_solutions():
    automata = {
        "x": compile_regex("a*", alphabet="ab"),
        "y": compile_regex("b*", alphabet="ab"),
        "z": compile_regex("aab*", alphabet="ab"),
    }
    # x . y = z has the solutions aa b^n; the decomposition must keep one.
    result = decompose([(("x", "y"), ("z",))], automata, alphabet=("a", "b"))
    assert result.complete or result.branches
    found = False
    for branch in result.branches:
        words = {}
        ok = True
        for name in branch.automata:
            if name in branch.substitution:
                continue
            choices = list(words_up_to(branch.automata[name], 3))
            if not choices:
                ok = False
                break
            words[name] = choices[-1]
        if not ok:
            continue
        lhs = "".join(words[p] for p in branch.expand_term(("x", "y")))
        rhs = "".join(words[p] for p in branch.expand_term(("z",)))
        if lhs == rhs and automata["z"].accepts(rhs):
            found = True
    assert found


def test_noodlify_minimization_is_budgeted():
    # The pre-split minimization must not determinize an exponential
    # subset space: this target's DFA has ~2^22 states, and the old
    # behaviour (instant EquationTooHard) must be preserved rather than
    # stalling past any solver deadline.
    import time

    target = compile_regex("(a|b)*a(a|b){21}", alphabet="ab")
    parts = [
        ("y", compile_regex("(a|b)*", alphabet="ab")),
        ("z", compile_regex("(a|b)*", alphabet="ab")),
        ("w", compile_regex("(a|b)*", alphabet="ab")),
    ]
    started = time.monotonic()
    with pytest.raises(EquationTooHard):
        noodlify_assignment(target, parts)
    assert time.monotonic() - started < 5.0


def test_decompose_reports_incompleteness_on_levi_budget():
    automata = {
        "x": compile_regex("(a|b)*", alphabet="ab"),
        "y": compile_regex("(a|b)*", alphabet="ab"),
        "z": compile_regex("(a|b)*", alphabet="ab"),
        "w": compile_regex("(a|b)*", alphabet="ab"),
    }
    result = decompose(
        [(("x", "y"), ("z", "w"))], automata, alphabet=("a", "b"), max_levi_splits=0
    )
    assert not result.complete


def test_branch_expand_is_transitive():
    branch = Branch(automata={}, substitution={"x": ("y", "z"), "y": ("w",)})
    assert branch.expand("x") == ("w", "z")
    assert branch.expand_term(("x", "x")) == ("w", "z", "w", "z")
