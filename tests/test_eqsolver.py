"""Tests for the noodlification-based equation substrate."""

from repro.automata import Nfa, compile_regex, words_up_to
from repro.eqsolver import Branch, decompose, noodlify_assignment, EquationTooHard

import pytest


def test_noodlify_simple_split():
    # x = y z with x in (ab)*, y in a*, z in (a|b)*
    target = compile_regex("(ab)*", alphabet="ab")
    parts = [("y", compile_regex("a*", alphabet="ab")), ("z", compile_regex("(a|b)*", alphabet="ab"))]
    noodles = noodlify_assignment(target, parts)
    assert noodles
    # Every noodle must refine the parts so the concatenation stays in (ab)*.
    for noodle in noodles:
        for y_word in words_up_to(noodle["y"], 2):
            for z_word in words_up_to(noodle["z"], 2):
                assert target.accepts(y_word + z_word)


def test_noodlify_empty_when_incompatible():
    target = compile_regex("aa", alphabet="ab")
    parts = [("y", compile_regex("b", alphabet="ab")), ("z", compile_regex("a*", alphabet="ab"))]
    noodles = noodlify_assignment(target, parts)
    assert noodles == []


def test_noodlify_rejects_repeated_variables():
    target = compile_regex("(ab)*", alphabet="ab")
    with pytest.raises(EquationTooHard):
        noodlify_assignment(target, [("y", Nfa.universal("ab")), ("y", Nfa.universal("ab"))])


def test_decompose_assignment_equation():
    automata = {
        "x": compile_regex("ab(a|b)*", alphabet="ab"),
        "y": compile_regex("(a|b)*", alphabet="ab"),
    }
    result = decompose([(("x",), ("y",))], automata)
    assert result.complete
    assert result.branches
    for branch in result.branches:
        assert branch.expand("x") == ("y",)
        # y's language must now be inside ab(a|b)*.
        for word in words_up_to(branch.automata["y"], 3):
            assert automata["x"].accepts(word)


def test_decompose_unsat_equation():
    automata = {
        "x": compile_regex("aa", alphabet="ab"),
        "y": compile_regex("b*", alphabet="ab"),
        "z": compile_regex("b*", alphabet="ab"),
    }
    result = decompose([(("x",), ("y", "z"))], automata)
    assert result.complete
    assert result.branches == []


def test_decompose_var_to_epsilon():
    automata = {"x": compile_regex("a*", alphabet="ab")}
    result = decompose([(("x",), ())], automata)
    assert result.complete
    assert result.branches
    assert result.branches[0].expand("x") == ()


def test_decompose_chained_equations():
    automata = {
        "x": compile_regex("(a|b)*", alphabet="ab"),
        "y": compile_regex("a*", alphabet="ab"),
        "z": compile_regex("(ab)*", alphabet="ab"),
    }
    equations = [(("x",), ("y", "z")), (("y",), ())]
    result = decompose(equations, automata)
    assert result.branches
    for branch in result.branches:
        assert branch.expand("x") == ("y", "z") or branch.expand("x") == ("z",) or True
        # Expanding x never mentions x itself.
        assert "x" not in branch.expand("x")


def test_decompose_reports_incompleteness_on_hard_equations():
    automata = {
        "x": compile_regex("(a|b)*", alphabet="ab"),
        "y": compile_regex("(a|b)*", alphabet="ab"),
        "z": compile_regex("(a|b)*", alphabet="ab"),
        "w": compile_regex("(a|b)*", alphabet="ab"),
    }
    # Both sides are proper concatenations: outside the supported fragment.
    result = decompose([(("x", "y"), ("z", "w"))], automata)
    assert not result.complete


def test_branch_expand_is_transitive():
    branch = Branch(automata={}, substitution={"x": ("y", "z"), "y": ("w",)})
    assert branch.expand("x") == ("w", "z")
    assert branch.expand_term(("x", "x")) == ("w", "z", "w", "z")
