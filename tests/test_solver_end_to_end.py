"""End-to-end tests of the three solvers on whole problems."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Contains,
    EagerReductionSolver,
    EnumerativeSolver,
    LengthConstraint,
    PositionSolver,
    PrefixOf,
    Problem,
    RegexMembership,
    SolverConfig,
    Status,
    StrAtAtom,
    StringVar,
    SuffixOf,
    WordEquation,
    brute_force_check,
    lit,
    str_len,
    term,
)
from repro.lia import LinExpr, eq as lia_eq, ge as lia_ge, le as lia_le
from repro.strings.semantics import eval_problem


def solve(problem, timeout=60.0):
    return PositionSolver(SolverConfig(timeout=timeout)).check(problem)


def assert_verified_sat(problem, result):
    assert result.status is Status.SAT
    assert eval_problem(problem, result.model.strings, result.model.integers)


def test_disequality_with_memberships_sat():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(a|b)*b"))
    problem.add(WordEquation(term("x"), term("y"), positive=False))
    result = solve(problem)
    assert_verified_sat(problem, result)


def test_disequality_against_forced_literal_unsat():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "ab"))
    problem.add(WordEquation(term("x"), term(lit("ab")), positive=False))
    assert solve(problem).status is Status.UNSAT


def test_equation_feeds_position_procedure():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(a|b)*"))
    problem.add(RegexMembership("y", "a*"))
    problem.add(WordEquation(term("x"), term("y", lit("b"))))
    problem.add(WordEquation(term("x"), term(lit("aab")), positive=False))
    result = solve(problem)
    assert_verified_sat(problem, result)


def test_position_hard_commuting_unsat():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(WordEquation(term("x", "y"), term("y", "x"), positive=False))
    assert solve(problem, timeout=90).status is Status.UNSAT


def test_not_contains_flat_sat_with_length():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "a*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(Contains(term("x"), term("y"), positive=False))
    problem.add(LengthConstraint(lia_ge(str_len("x"), 1)))
    result = solve(problem)
    assert_verified_sat(problem, result)


def test_not_contains_unsat():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "a"))
    problem.add(RegexMembership("y", "aa*"))
    problem.add(Contains(term("x"), term("y"), positive=False))
    assert solve(problem).status is Status.UNSAT


def test_not_contains_self_concatenation_unsat():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(Contains(term("x"), term("x", "x"), positive=False))
    assert solve(problem).status is Status.UNSAT


def test_not_prefix_and_suffix_on_disjoint_variables():
    # Two position predicates over disjoint variables: the solver splits them
    # into independent components, each using the cheap A^II construction.
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(a|b)(a|b)"))
    problem.add(RegexMembership("y", "ab(a|b)*"))
    problem.add(RegexMembership("u", "(a|b)(a|b)"))
    problem.add(PrefixOf(term("x"), term("y"), positive=False))
    problem.add(SuffixOf(term(lit("a")), term("u"), positive=False))
    result = solve(problem)
    assert_verified_sat(problem, result)
    assert not result.model.strings["u"].endswith("a")


def test_str_at_with_index_constraint():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("c", "a|b"))
    problem.add(RegexMembership("y", "ab"))
    problem.add(StrAtAtom(StringVar("c"), term("y"), LinExpr.var("i")))
    problem.add(LengthConstraint(lia_eq(LinExpr.var("i"), 1)))
    result = solve(problem)
    assert_verified_sat(problem, result)
    assert result.model.strings["c"] == "b"
    assert result.model.integers["i"] == 1


def test_independent_predicates_are_split_into_components():
    problem = Problem(alphabet=tuple("ab"))
    for name, regex in [("x", "(ab)*"), ("y", "(ab)*"), ("u", "a*"), ("v", "b*")]:
        problem.add(RegexMembership(name, regex))
    problem.add(WordEquation(term("x"), term("y"), positive=False))
    problem.add(WordEquation(term("u"), term("v"), positive=False))
    result = solve(problem)
    assert_verified_sat(problem, result)


def test_length_constraints_restrict_models():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(WordEquation(term("x"), term(lit("")), positive=False))
    problem.add(LengthConstraint(lia_le(str_len("x"), 2)))
    result = solve(problem)
    assert_verified_sat(problem, result)
    assert result.model.strings["x"] == "ab"


def test_unsat_length_and_membership():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(LengthConstraint(lia_eq(str_len("x"), 3)))
    assert solve(problem).status is Status.UNSAT


def test_empty_language_membership_is_unsat():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "a"))
    problem.add(RegexMembership("x", "b"))
    problem.add(WordEquation(term("x"), term(lit("c")), positive=False))
    assert solve(problem).status is Status.UNSAT


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def test_eager_baseline_on_simple_disequality():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(a|b)*b"))
    problem.add(WordEquation(term("x"), term("y"), positive=False))
    result = EagerReductionSolver(SolverConfig(timeout=30)).check(problem)
    assert result.status in (Status.SAT, Status.UNKNOWN, Status.TIMEOUT)
    if result.status is Status.SAT:
        assert eval_problem(problem, result.model.strings, result.model.integers)


def test_eager_baseline_gives_up_on_not_contains():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "a*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(Contains(term("x"), term("y"), positive=False))
    assert EagerReductionSolver(SolverConfig(timeout=10)).check(problem).status is Status.UNKNOWN


def test_enumerative_finds_easy_models_but_cannot_refute():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(WordEquation(term("x"), term("y"), positive=False))
    assert EnumerativeSolver(SolverConfig(timeout=10)).check(problem).status is Status.SAT

    unsat = Problem(alphabet=tuple("ab"))
    unsat.add(RegexMembership("x", "(ab)*"))
    unsat.add(RegexMembership("y", "(ab)*"))
    unsat.add(WordEquation(term("x", "y"), term("y", "x"), positive=False))
    result = EnumerativeSolver(SolverConfig(timeout=5)).check(unsat)
    assert result.status in (Status.UNKNOWN, Status.TIMEOUT)


def test_brute_force_oracle_agrees_on_finite_instance():
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "a|b"))
    problem.add(RegexMembership("y", "a|b"))
    problem.add(WordEquation(term("x"), term("y"), positive=False))
    oracle = brute_force_check(problem, max_length=2)
    ours = solve(problem)
    assert oracle.status is Status.SAT
    assert ours.status is Status.SAT


# ----------------------------------------------------------------------
# Property-based: random problems, main solver vs. brute force oracle
# ----------------------------------------------------------------------
_regex_pool = ["a", "ab", "a*", "(ab)*", "a|b", "(a|b){0,2}", "b(a|b)?"]


@settings(max_examples=12, deadline=None)
@given(
    st.sampled_from(_regex_pool),
    st.sampled_from(_regex_pool),
    st.sampled_from(["diseq", "notprefix", "notsuffix"]),
)
def test_random_problem_agrees_with_oracle(rx, ry, kind):
    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", rx))
    problem.add(RegexMembership("y", ry))
    if kind == "diseq":
        problem.add(WordEquation(term("x"), term("y"), positive=False))
    elif kind == "notprefix":
        problem.add(PrefixOf(term("x"), term("y"), positive=False))
    else:
        problem.add(SuffixOf(term("x"), term("y"), positive=False))
    result = solve(problem)
    oracle = brute_force_check(problem, max_length=4)
    assert result.status in (Status.SAT, Status.UNSAT)
    if oracle.status is Status.SAT:
        assert result.status is Status.SAT
    if result.status is Status.SAT:
        assert eval_problem(problem, result.model.strings, result.model.integers)
    if oracle.status is Status.UNSAT:
        assert result.status is Status.UNSAT
