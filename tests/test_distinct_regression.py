"""Regression suite for the n-ary ``distinct`` family.

The ROADMAP's known wrong-behaviour class: ``(distinct x y z)`` over
unconstrained variables expands into ≥ 3 pairwise disequalities whose
3-predicate ``A^III`` system encoding used to overwhelm the SAT search and
time out.  The easy-case witness path (greedy word picking with length
windows, exact enumeration of small finite groups) must now answer the
whole family — universal and constrained automata, 3/4/5 variables,
pigeonhole-unsatisfiable variants, length-bound mixes — with *verified*
models or sound UNSAT verdicts, while the hard commuting shapes keep
flowing through the (CDCL-backed) encoding
(:mod:`tests.test_position_hard_regression`).
"""

import pytest

from repro import Session
from repro.lia import eq as lia_eq, ge, le
from repro.smtlib import run_script
from repro.smtlib.lexer import SmtLibError
from repro.solver import SolverConfig, Status
from repro.strings.ast import (
    LengthConstraint,
    Problem,
    RegexMembership,
    WordEquation,
    str_len,
    term,
)
from repro.strings.semantics import eval_problem


def _distinct(names):
    return [
        WordEquation(term(a), term(b), positive=False)
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    ]


def _config(**overrides):
    options = {"timeout": 20.0}
    options.update(overrides)
    return SolverConfig(**options)


def _check_sat_verified(session, atoms, alphabet=("a", "b")):
    result = session.check()
    assert result.status is Status.SAT, result.reason
    model = session.model()
    problem = Problem(atoms=list(atoms), alphabet=tuple(alphabet))
    assert eval_problem(problem, model.strings, model.integers)
    return result


# ----------------------------------------------------------------------
# Satisfiable distinct groups answer through the witness path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("count", [3, 4, 5])
def test_distinct_unconstrained_answers_sat_without_lia(count):
    names = [f"v{i}" for i in range(count)]
    atoms = _distinct(names)
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    result = _check_sat_verified(session, atoms)
    # The witness path answers without a single LIA query — the old
    # behaviour was a timeout inside the A^III encoding's SAT search.
    assert result.lia_queries == 0
    assert session.statistics()["distinct_shortcuts"] >= 1


def test_distinct_over_constrained_automata():
    atoms = [RegexMembership(v, "(ab)*") for v in ("x", "y", "z")]
    atoms += _distinct(["x", "y", "z"])
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    result = _check_sat_verified(session, atoms)
    assert result.lia_queries == 0


def test_distinct_mixed_with_length_bounds():
    atoms = _distinct(["x", "y", "z"])
    atoms.append(LengthConstraint(ge(str_len("x"), 2)))
    atoms.append(LengthConstraint(le(str_len("y"), 1)))
    atoms.append(LengthConstraint(lia_eq(str_len("z"), 3)))
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    result = _check_sat_verified(session, atoms)
    assert result.lia_queries == 0
    model = session.model()
    assert len(model["x"]) >= 2 and len(model["y"]) <= 1 and len(model["z"]) == 3


def test_distinct_mixed_memberships_and_bounds():
    atoms = [
        RegexMembership("x", "a*"),
        RegexMembership("y", "(a|b)*"),
        RegexMembership("z", "b*"),
        LengthConstraint(ge(str_len("y"), 1)),
    ]
    atoms += _distinct(["x", "y", "z"])
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    _check_sat_verified(session, atoms)


def test_distinct_incremental_push_pop():
    session = Session(config=_config(), alphabet=("a", "b"))
    base = _distinct(["x", "y", "z"])
    for atom in base:
        session.add(atom)
    _check_sat_verified(session, base)
    session.push()
    bound = LengthConstraint(le(str_len("x"), 0))
    session.add(bound)
    _check_sat_verified(session, base + [bound])
    session.pop()
    _check_sat_verified(session, base)


# ----------------------------------------------------------------------
# Pigeonhole variants are refuted exactly
# ----------------------------------------------------------------------
def test_distinct_three_variables_over_two_words_is_unsat():
    atoms = [RegexMembership(v, "a|b") for v in ("x", "y", "z")]
    atoms += _distinct(["x", "y", "z"])
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    assert session.check().status is Status.UNSAT


def test_distinct_four_variables_over_three_words_is_unsat():
    names = ["x", "y", "z", "w"]
    atoms = [RegexMembership(v, "a|b|ab") for v in names]
    atoms += _distinct(names)
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    assert session.check().status is Status.UNSAT


def test_distinct_forced_empty_words_is_unsat():
    atoms = _distinct(["x", "y", "z"])
    atoms += [LengthConstraint(le(str_len(v), 0)) for v in ("x", "y", "z")]
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    assert session.check().status is Status.UNSAT


def test_exact_search_never_truncates_the_candidate_window():
    # A wide language with a narrow length window: only 4 of the 27
    # length-3 words over "abc" fit an early enumeration cap, but the
    # instance is trivially satisfiable — a candidate set capped *before*
    # the window filter once certified itself complete and answered a
    # wrong unsat here.
    names = [f"v{i}" for i in range(5)]
    atoms = _distinct(names)
    atoms += [LengthConstraint(lia_eq(str_len(v), 3)) for v in names]
    session = Session(config=_config(), alphabet=("a", "b", "c"))
    for atom in atoms:
        session.add(atom)
    result = session.check()
    assert result.status is Status.SAT, result.reason
    model = session.model()
    problem = Problem(atoms=list(atoms), alphabet=("a", "b", "c"))
    assert eval_problem(problem, model.strings, model.integers)
    assert all(len(model[v]) == 3 for v in names)


def test_unsat_core_excludes_predicate_free_bystanders():
    # Predicate-free length-referenced variables must not share an
    # encoding component: fusing them once smeared the |x| = 3 refutation
    # onto the unrelated |y| >= 1 bystander.
    session = Session(config=_config(), alphabet=("a", "b"))
    session.add(RegexMembership("x", "(ab)*"), name="mem")
    session.add(LengthConstraint(ge(str_len("y"), 1)), name="bystander")
    session.add(LengthConstraint(lia_eq(str_len("x"), 3)), name="odd")
    assert session.check().status is Status.UNSAT
    assert session.unsat_core() == ("mem", "odd")


def test_unsat_core_keeps_asserted_integer_equalities():
    # A defining equality over pure-Int variables is not assumption-safe
    # (it must stay asserted so the presolve can eliminate it); its atom
    # must still reach the core through the conflict-variable mapping —
    # dropping it once forced a fallback to the full assertion set,
    # dragging the string bystander in.
    from repro.lia import eq as int_eq, var as int_var
    from repro.strings.ast import WordEquation, lit

    session = Session(config=_config(), alphabet=("a", "b"))
    session.add(WordEquation(term("x"), term(lit("ab"))), name="bystander")
    session.add(
        LengthConstraint(int_eq(int_var("i"), int_var("j") + 1)), name="link"
    )
    session.add(LengthConstraint(le(int_var("i"), 0)), name="cap")
    session.add(LengthConstraint(ge(int_var("j"), 5)), name="floor")
    assert session.check().status is Status.UNSAT
    core = session.unsat_core()
    assert "bystander" not in core
    assert set(core) == {"link", "cap", "floor"}


def test_distinct_unsat_core_is_deterministic_and_verified():
    def build():
        session = Session(config=_config(), alphabet=("a", "b"))
        session.add(RegexMembership("noise", "(a|b)*"), name="noise")
        for v in ("x", "y", "z"):
            session.add(RegexMembership(v, "a|b"), name=f"m{v}")
        for index, atom in enumerate(_distinct(["x", "y", "z"])):
            session.add(atom, name=f"d{index}")
        return session

    first = build()
    assert first.check().status is Status.UNSAT
    core_one = first.unsat_core()
    second = build()
    assert second.check().status is Status.UNSAT
    assert second.unsat_core() == core_one, "cores differ across runs"
    assert "noise" not in core_one
    # Core order follows assertion order, not set iteration.
    positions = {name: i for i, (name, _) in enumerate(first.assertions())}
    assert list(core_one) == sorted(core_one, key=positions.__getitem__)


# ----------------------------------------------------------------------
# SMT-LIB frontend: distinct and its negation
# ----------------------------------------------------------------------
def test_smtlib_distinct_three_strings_is_sat_with_model():
    script = """
    (set-logic QF_S)
    (set-info :alphabet "ab")
    (declare-const x String)
    (declare-const y String)
    (declare-const z String)
    (assert (distinct x y z))
    (check-sat)
    (get-model)
    """
    output = run_script(script)
    assert output[0] == "sat"
    assert "define-fun" in output[1]


def test_smtlib_negated_int_distinct_is_a_disjunction():
    script = """
    (set-logic QF_SLIA)
    (declare-const i Int)
    (declare-const j Int)
    (declare-const k Int)
    (assert (not (distinct i j k)))
    (assert (distinct i j))
    (assert (distinct i k))
    (check-sat)
    """
    assert run_script(script) == ["sat"]  # forces j = k
    unsat_script = script.replace("(check-sat)", "(assert (distinct j k))\n(check-sat)")
    assert run_script(unsat_script) == ["unsat"]


def test_smtlib_negated_string_distinct_stays_a_clean_error():
    script = """
    (declare-const x String)
    (declare-const y String)
    (declare-const z String)
    (assert (not (distinct x y z)))
    (check-sat)
    """
    with pytest.raises(SmtLibError, match="disjunction"):
        run_script(script)


def test_smtlib_distinct_with_length_bounds():
    script = """
    (set-logic QF_SLIA)
    (set-info :alphabet "ab")
    (declare-const x String)
    (declare-const y String)
    (declare-const z String)
    (assert (distinct x y z))
    (assert (>= (str.len x) 2))
    (assert (<= (str.len z) 1))
    (check-sat)
    """
    assert run_script(script) == ["sat"]


# ----------------------------------------------------------------------
# The encoding still owns what the witness path declines
# ----------------------------------------------------------------------
def test_witness_path_declines_concatenation_sides():
    # The hard commuting shapes (x·y ≠ y·x — see
    # tests/test_position_hard_regression.py for the end-to-end verdicts)
    # must flow through the A^III encoding: the witness path only handles
    # single-variable sides.
    from repro.eqsolver import Branch
    from repro.solver.solver import IncrementalPipeline
    from repro.strings.normal_form import normalize

    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(WordEquation(term("x", "y"), term("y", "x"), positive=False))
    problem.add(WordEquation(term("x"), term("y"), positive=False))
    normal_form = normalize(problem)
    pipeline = IncrementalPipeline(_config())
    branch = Branch(dict(normal_form.automata))
    regular, contains, automata, error = pipeline._expand_predicates(normal_form, branch)
    assert not error and len(regular) == 2
    remaining = [name for name in automata if name not in branch.substitution]
    declined = pipeline._distinct_witness(
        problem, normal_form, branch, regular, automata, remaining
    )
    assert declined is None
    assert pipeline.counters["distinct_shortcuts"] == 0


def test_witness_path_never_claims_an_unverified_model():
    # A disequality of two copies of the same variable is always false;
    # the witness path must decline (x ≠ x) rather than answer.
    atoms = [WordEquation(term("x"), term("x"), positive=False)]
    atoms += _distinct(["x", "y"])
    session = Session(config=_config(), alphabet=("a", "b"))
    for atom in atoms:
        session.add(atom)
    assert session.check().status is not Status.SAT
