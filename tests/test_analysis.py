"""Self-tests for the repo-invariant analyzer (``repro.analysis``).

Two layers:

* **fixtures** — every rule gets at least one positive (a seeded violation
  the rule must flag) and one negative (idiomatic code it must stay silent
  on), analyzed as in-memory modules with engine-layer relpaths;
* **the repo gate** — the analyzer run on this repository itself must exit
  clean, every suppression must carry a reason, and the two incident
  regressions (the PR-6 un-checkpointed presolve loop, a direct
  ``Nfa._states`` write) must re-trip it when deliberately re-introduced.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import analyze, analyze_paths, load_modules, repo_root
from repro.analysis.callgraph import CallGraph
from repro.analysis.framework import select_rules
from repro.analysis.loader import parse_module

REPO = repo_root()
ENGINE = "src/repro/solver/fixture.py"


def run_rules(source, relpath=ENGINE, rules=None, extra=()):
    """Analyze ``source`` (plus optional extra modules) with chosen rules."""
    modules = [parse_module("<fixture>", relpath, source=source)]
    for other_relpath, other_source in extra:
        modules.append(parse_module("<fixture>", other_relpath, source=other_source))
    return analyze(modules, rules=select_rules(rules))


def violations(report, rule):
    return [f for f in report.unsuppressed if f.rule == rule]


# ----------------------------------------------------------------------
# checkpoint-coverage
# ----------------------------------------------------------------------

PRESOLVE_LOOP = """
def eliminate_equalities(equalities, remaining):
    eliminated = []
    while equalities:
        constraint = equalities.pop()
        remaining = [substitute(other, constraint) for other in remaining]
        eliminated.append(constraint)
    return eliminated


def substitute(expr, constraint):
    return expr.replace(constraint)
"""


def test_checkpoint_flags_unchecked_presolve_loop():
    report = run_rules(PRESOLVE_LOOP, relpath="src/repro/lia/simplify.py",
                       rules=["checkpoint-coverage"])
    found = violations(report, "checkpoint-coverage")
    assert len(found) == 1
    assert found[0].line == 4  # the while statement


def test_checkpoint_passes_direct_and_interprocedural():
    source = """
from ..budget import checkpoint

def direct(frontier):
    while frontier:
        checkpoint("stage", 1)
        frontier = step(frontier)

def via_callee(frontier):
    while frontier:
        frontier = helper(frontier)

def helper(frontier):
    checkpoint("stage", 1)
    return frontier.next()
"""
    report = run_rules(source, rules=["checkpoint-coverage"])
    assert not violations(report, "checkpoint-coverage")


def test_checkpoint_exempts_trivial_bitscan_and_traversal():
    source = """
def iter_bits(mask):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low

def copy_delta(delta):
    out = {}
    for src, by_symbol in delta.items():
        for symbol, dsts in by_symbol.items():
            out.setdefault(src, {})[symbol] = set(dsts)
    return out
"""
    report = run_rules(source, relpath="src/repro/automata/fixture.py",
                       rules=["checkpoint-coverage"])
    assert not violations(report, "checkpoint-coverage")


def test_checkpoint_product_for_needs_charge_but_accepts_upfront():
    flagged = """
def pairs(xs, ys):
    out = []
    for x in xs:
        for y in ys:
            out.append(make(x, y))
    return out
"""
    report = run_rules(flagged, rules=["checkpoint-coverage"])
    assert len(violations(report, "checkpoint-coverage")) == 1

    charged = """
from ..budget import checkpoint

def pairs(xs, ys):
    checkpoint("stage", len(xs) * len(ys))
    out = []
    for x in xs:
        for y in ys:
            out.append(make(x, y))
    return out
"""
    report = run_rules(charged, rules=["checkpoint-coverage"])
    assert not violations(report, "checkpoint-coverage")


def test_checkpoint_upfront_charge_does_not_excuse_while():
    source = """
from ..budget import checkpoint

def fixpoint(worklist):
    checkpoint("stage", 1)
    while worklist:
        worklist = expand(worklist)
"""
    report = run_rules(source, rules=["checkpoint-coverage"])
    assert len(violations(report, "checkpoint-coverage")) == 1


def test_checkpoint_enclosing_loop_coverage():
    # the dense-core idiom: the outer worklist checkpoints per iteration,
    # the inner scans ride under it
    source = """
from ..budget import checkpoint

def reachable(frontier, incoming):
    while frontier:
        checkpoint("stage", 1)
        step = advance(frontier)
        while step:
            step = consume(step, incoming)
        frontier = step
"""
    report = run_rules(source, rules=["checkpoint-coverage"])
    assert not violations(report, "checkpoint-coverage")


def test_checkpoint_scope_is_engine_packages_only():
    report = run_rules(PRESOLVE_LOOP, relpath="src/repro/smtlib/fixture.py",
                       rules=["checkpoint-coverage"])
    assert not violations(report, "checkpoint-coverage")


def test_reintroducing_unchecked_intsolver_loop_trips_analyzer():
    # The acceptance regression: strip the real elimination loop's
    # checkpoint and the analyzer must fail on the modified module.
    path = os.path.join(REPO, "src/repro/lia/intsolver.py")
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    assert 'checkpoint("lia.eliminate")' in source
    stripped = source.replace('checkpoint("lia.eliminate")\n', "pass\n")
    clean = run_rules(source, relpath="src/repro/lia/intsolver.py",
                      rules=["checkpoint-coverage"])
    assert not violations(clean, "checkpoint-coverage")
    broken = run_rules(stripped, relpath="src/repro/lia/intsolver.py",
                       rules=["checkpoint-coverage"])
    assert violations(broken, "checkpoint-coverage")


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


def test_determinism_flags_clock_and_ambient_rng():
    source = """
import random
import time
from time import monotonic

def jitter():
    started = time.time()
    drift = monotonic()
    pick = random.random()
    rng = random.Random()
    return started, drift, pick, rng
"""
    report = run_rules(source, rules=["determinism"])
    lines = {f.line for f in violations(report, "determinism")}
    assert lines == {7, 8, 9, 10}


def test_determinism_accepts_seeded_rng_and_exempt_scopes():
    seeded = """
import random

def sample(seed):
    return random.Random(seed).random()


def default_rng():
    return random.Random(0)
"""
    report = run_rules(seeded, rules=["determinism"])
    assert not violations(report, "determinism")
    clocky = "import time\n\ndef now():\n    return time.time()\n"
    for exempt in ("src/repro/budget.py", "src/repro/serve/server.py",
                   "tests/test_fixture.py"):
        report = run_rules(clocky, relpath=exempt, rules=["determinism"])
        assert not violations(report, "determinism"), exempt


def test_sample_word_default_rng_is_seeded():
    # regression for the finding this analyzer surfaced: sample_word's
    # fallback RNG was entropy-seeded, so reruns disagreed
    from repro.automata.enumeration import sample_word
    from repro.automata.nfa import Nfa

    nfa = Nfa.from_word("ab")
    words = {sample_word(nfa, 4) for _ in range(8)}
    assert len(words) == 1  # deterministic without a caller-supplied rng


# ----------------------------------------------------------------------
# cache-discipline
# ----------------------------------------------------------------------


def test_cache_discipline_flags_direct_nfa_state_writes():
    source = """
def corrupt(nfa):
    nfa._states = set()
    nfa._final.add(7)
    nfa._dense = None
    del nfa._delta
"""
    report = run_rules(source, rules=["cache-discipline"])
    lines = {f.line for f in violations(report, "cache-discipline")}
    assert lines == {3, 4, 5, 6}


def test_cache_discipline_applies_to_tests_but_not_nfa_py():
    source = "def prime(nfa, dense):\n    nfa._dense = dense\n"
    report = run_rules(source, relpath="tests/test_fixture.py",
                       rules=["cache-discipline"])
    assert violations(report, "cache-discipline")
    report = run_rules(source, relpath="src/repro/automata/nfa.py",
                       rules=["cache-discipline"])
    assert not violations(report, "cache-discipline")


def test_cache_discipline_allows_managed_properties():
    source = """
def rebuild(nfa, states):
    nfa.states = set(states)
    nfa.initial = {0}
    nfa.final = {1}
"""
    report = run_rules(source, rules=["cache-discipline"])
    assert not violations(report, "cache-discipline")


# ----------------------------------------------------------------------
# exception-hygiene
# ----------------------------------------------------------------------


def test_exception_hygiene_flags_swallowing_blanket_handlers():
    source = """
def brittle(problem):
    try:
        return solve(problem)
    except Exception:
        return None
    finally:
        pass
"""
    report = run_rules(source, rules=["exception-hygiene"])
    assert len(violations(report, "exception-hygiene")) == 1


def test_exception_hygiene_accepts_reraise_and_typed_conversion():
    source = """
from ..budget import UnknownKind, UnknownReason

def careful(problem):
    try:
        return solve(problem)
    except Exception as failure:
        reason = UnknownReason(UnknownKind.INTERNAL_ERROR, detail=str(failure))
        return unknown(reason)

def passthrough(problem):
    try:
        return solve(problem)
    except Exception:
        cleanup()
        raise
"""
    report = run_rules(source, rules=["exception-hygiene"])
    assert not violations(report, "exception-hygiene")


def test_exception_hygiene_scope_excludes_non_engine_layers():
    source = "def lax():\n    try:\n        go()\n    except Exception:\n        pass\n"
    report = run_rules(source, relpath="src/repro/smtlib/fixture.py",
                       rules=["exception-hygiene"])
    assert not violations(report, "exception-hygiene")


# ----------------------------------------------------------------------
# async-safety
# ----------------------------------------------------------------------


def test_async_safety_flags_blocking_calls_in_coroutines():
    source = """
import time

async def handler(pool, spec, path):
    time.sleep(0.1)
    handle = open(path)
    return pool.submit(run, spec).result()
"""
    report = run_rules(source, relpath="src/repro/serve/fixture.py",
                       rules=["async-safety"])
    lines = {f.line for f in violations(report, "async-safety")}
    assert lines == {5, 6, 7}


def test_async_safety_ignores_sync_defs_and_awaited_joins():
    source = """
import asyncio
import time

async def handler(pool, spec):
    await asyncio.sleep(0.1)
    result = await asyncio.wrap_future(pool.submit(run, spec))

    def blocking_callback():
        time.sleep(1.0)

    return result, blocking_callback

def plain(path):
    time.sleep(0.1)
    return open(path)
"""
    report = run_rules(source, relpath="src/repro/serve/fixture.py",
                       rules=["async-safety"])
    assert not violations(report, "async-safety")


# ----------------------------------------------------------------------
# spawn-safety
# ----------------------------------------------------------------------


def test_spawn_safety_flags_lambdas_and_local_defs():
    source = """
def dispatch(executor, spec):
    def local_job(item):
        return item + 1

    executor.submit(lambda: spec)
    executor.submit(local_job, spec)
"""
    report = run_rules(source, relpath="src/repro/serve/fixture.py",
                       rules=["spawn-safety"])
    assert len(violations(report, "spawn-safety")) == 2


def test_spawn_safety_accepts_module_level_callables():
    source = """
from concurrent.futures import ProcessPoolExecutor

def run_job(spec):
    return spec

def build(flags, payload):
    pool = ProcessPoolExecutor(initializer=initializer, initargs=(flags, payload))
    return pool.submit(run_job, {"x": 1})

def initializer(flags, payload):
    pass
"""
    report = run_rules(source, relpath="src/repro/serve/fixture.py",
                       rules=["spawn-safety"])
    assert not violations(report, "spawn-safety")


def test_spawn_safety_scope_is_serve_only():
    source = "def f(executor):\n    executor.submit(lambda: 1)\n"
    report = run_rules(source, relpath="src/repro/solver/fixture.py",
                       rules=["spawn-safety"])
    assert not violations(report, "spawn-safety")


# ----------------------------------------------------------------------
# suppressions and the meta rule
# ----------------------------------------------------------------------


def test_suppression_silences_with_reason_and_is_reported():
    source = """
import time

def now():
    return time.time()  # repro: allow(determinism): fixture needs the wall clock
"""
    report = run_rules(source, rules=["suppression", "determinism"])
    assert not report.unsuppressed
    assert len(report.suppressed) == 1
    assert report.suppressed[0].suppression_reason.startswith("fixture needs")


def test_suppression_on_line_above_covers_next_line():
    source = """
import time

def now():
    # repro: allow(determinism): fixture needs the wall clock
    return time.time()
"""
    report = run_rules(source, rules=["suppression", "determinism"])
    assert not report.unsuppressed


def test_malformed_and_unknown_suppressions_are_violations():
    source = """
import time

def now():
    also = time.time()  # repro: allow(determinism)
    return time.time()  # repro: allow(no-such-rule): reason text
"""
    report = run_rules(source, rules=["suppression", "determinism"])
    meta = violations(report, "suppression")
    assert len(meta) == 2
    assert any("malformed" in f.message for f in meta)
    assert any("unknown rule" in f.message for f in meta)
    # neither comment suppressed the real findings
    assert len(violations(report, "determinism")) == 2


def test_the_suppression_rule_cannot_be_suppressed():
    source = """
x = 1  # repro: allow(suppression): trying to silence the meta rule
"""
    report = run_rules(source, rules=["suppression"])
    found = violations(report, "suppression")
    assert len(found) == 1
    assert "cannot be suppressed" in found[0].message


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------


def test_callgraph_resolves_transitive_checkpoints():
    module = parse_module("<fixture>", ENGINE, source="""
def outer():
    middle()

def middle():
    inner()

def inner(budget):
    budget.check_now("stage")

def dead_end():
    return 42
""")
    graph = CallGraph([module])
    assert graph.function_reaches_checkpoint("outer")
    assert graph.function_reaches_checkpoint("middle")
    assert not graph.function_reaches_checkpoint("dead_end")
    assert not graph.function_reaches_checkpoint("unknown_name")


def test_callgraph_survives_recursion():
    module = parse_module("<fixture>", ENGINE, source="""
def ping(n):
    return pong(n - 1)

def pong(n):
    return ping(n - 1)
""")
    graph = CallGraph([module])
    assert not graph.function_reaches_checkpoint("ping")


# ----------------------------------------------------------------------
# the repo gate (what the CI lint job asserts)
# ----------------------------------------------------------------------


def test_repository_is_clean_and_suppressions_are_justified():
    report = analyze_paths(root=REPO)
    assert report.ok, [f"{f.location()}: [{f.rule}] {f.message}"
                       for f in report.unsuppressed]
    assert report.files_scanned > 50
    for finding in report.suppressed:
        assert finding.suppression_reason.strip(), finding.location()
    assert report.runtime_seconds > 0.0
    assert report.to_json()["runtime_seconds"] > 0.0


def test_cli_json_report_shape_and_exit_codes():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    done = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--json", "--max-runtime", "10"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert done.returncode == 0, done.stdout + done.stderr
    payload = json.loads(done.stdout)
    assert payload["ok"] is True
    assert payload["violations"] == 0
    assert payload["max_runtime_exceeded"] is False
    assert 0.0 < payload["runtime_seconds"] < 10.0

    # an absurd runtime budget must fail the run even when the tree is clean
    done = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--json",
         "--max-runtime", "0.000001"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert done.returncode == 1
    assert json.loads(done.stdout)["max_runtime_exceeded"] is True


def test_cli_rejects_unknown_rule():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    done = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--rule", "no-such-rule"],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert done.returncode == 2
    assert "unknown rule" in done.stderr
