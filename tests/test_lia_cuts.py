"""Tests for the cutting-plane layer: Gomory cuts and the Omega pre-pass.

Two properties are load-bearing for soundness and are checked here against
brute-force integer enumeration:

* **validity** — a cut (or an Omega projection verdict) never excludes an
  integer point that satisfies the source constraints, and
* **provenance** — conflict cores built from cuts name only the original
  constraints that actually contributed to the refutation.
"""

import itertools
import random

import pytest

from repro.lia import LinExpr
from repro.lia.intsolver import (
    ResourceLimit,
    _omega_check,
    check_integer_feasibility,
)
from repro.lia.simplex import Constraint, Simplex


def expr(coeffs, const=0):
    return LinExpr(coeffs, const)


def _holds(constraint, point):
    value = constraint.expr.const + sum(
        coeff * point[name] for name, coeff in constraint.expr.coeffs.items()
    )
    if constraint.relation == "<=":
        return value <= 0
    if constraint.relation == ">=":
        return value >= 0
    return value == 0


def _integer_points(variables, radius):
    for values in itertools.product(range(-radius, radius + 1), repeat=len(variables)):
        yield dict(zip(variables, values))


def _random_system(rng, num_vars=3, num_constraints=5, radius=3):
    """A random bounded system: box bounds plus random inequalities."""
    variables = [f"x{i}" for i in range(num_vars)]
    constraints = []
    for index, name in enumerate(variables):
        constraints.append(Constraint(expr({name: 1}, -radius), "<=", tag=f"box-hi-{index}"))
        constraints.append(Constraint(expr({name: 1}, radius), ">=", tag=f"box-lo-{index}"))
    for index in range(num_constraints):
        coeffs = {name: rng.randint(-3, 3) for name in rng.sample(variables, rng.randint(1, num_vars))}
        coeffs = {name: coeff for name, coeff in coeffs.items() if coeff}
        if not coeffs:
            continue
        relation = rng.choice(["<=", ">=", "=="])
        constraints.append(
            Constraint(expr(coeffs, rng.randint(-4, 4)), relation, tag=f"c{index}")
        )
    return variables, constraints


# ----------------------------------------------------------------------
# Gomory cut validity
# ----------------------------------------------------------------------
def test_gomory_cuts_never_cut_off_integer_points():
    rng = random.Random(20250729)
    radius = 3
    checked_cuts = 0
    for _ in range(60):
        variables, constraints = _random_system(rng, radius=radius)
        simplex = Simplex()
        for constraint in constraints:
            simplex.add_constraint(constraint)
        result = simplex.check()
        if not result.feasible:
            continue
        cuts = simplex.gomory_cuts()
        if not cuts:
            continue
        solutions = [
            point
            for point in _integer_points(variables, radius)
            if all(_holds(c, point) for c in constraints)
        ]
        for cut in cuts:
            checked_cuts += 1
            for point in solutions:
                assert _holds(cut, point), (
                    f"cut {cut.expr} >= 0 excludes integer solution {point}"
                )
    assert checked_cuts >= 5, "the random systems produced too few cuts to be meaningful"


def test_gomory_cut_is_violated_by_the_fractional_vertex():
    # x + 2y >= 1, x + 2y <= 1 with x, y >= 0: the vertex has y = 1/2.
    simplex = Simplex()
    for constraint in (
        Constraint(expr({"x": 1, "y": 2}, -1), "==", tag="eq"),
        Constraint(expr({"x": 3, "y": 2}, -2), "==", tag="eq2"),
    ):
        simplex.add_constraint(constraint)
    result = simplex.check()
    assert result.feasible
    cuts = simplex.gomory_cuts()
    assert cuts, "a fractional basic variable must produce a cut"
    for cut in cuts:
        value = cut.expr.const + sum(
            coeff * result.model[name] for name, coeff in cut.expr.coeffs.items()
        )
        assert value < 0, "a Gomory cut must cut off the current fractional vertex"


def test_gomory_cut_tags_are_subsets_of_source_tags():
    rng = random.Random(7)
    for _ in range(40):
        _variables, constraints = _random_system(rng)
        source_tags = {c.tag for c in constraints}
        simplex = Simplex()
        for constraint in constraints:
            simplex.add_constraint(constraint)
        if not simplex.check().feasible:
            continue
        for cut in simplex.gomory_cuts():
            assert isinstance(cut.tag, frozenset)
            assert cut.tag <= source_tags


def test_gomory_cuts_ignore_unrelated_constraints():
    # z's bounds never appear in a fractional row over x/y, so no cut may
    # carry the unrelated tag (that would poison later conflict cores).
    simplex = Simplex()
    for constraint in (
        Constraint(expr({"x": 1, "y": 2}, -1), "==", tag="eq"),
        Constraint(expr({"x": 3, "y": 2}, -2), "==", tag="eq2"),
        Constraint(expr({"z": 1}, -5), ">=", tag="unrelated"),
    ):
        simplex.add_constraint(constraint)
    assert simplex.check().feasible
    cuts = simplex.gomory_cuts()
    assert cuts
    for cut in cuts:
        assert "unrelated" not in cut.tag


# ----------------------------------------------------------------------
# Omega pre-pass
# ----------------------------------------------------------------------
def test_omega_check_agrees_with_bruteforce():
    rng = random.Random(42)
    radius = 3
    unsat_seen = sat_seen = 0
    for _ in range(120):
        variables, constraints = _random_system(rng, radius=radius)
        verdict, payload = _omega_check(constraints)
        if verdict is None:
            continue
        has_solution = any(
            all(_holds(c, point) for c in constraints)
            for point in _integer_points(variables, radius)
        )
        if verdict == "unsat":
            unsat_seen += 1
            assert not has_solution, "omega refuted a satisfiable system"
            assert payload, "an omega refutation must carry provenance tags"
        else:
            sat_seen += 1
            # The intsolver re-verifies omega models before trusting them;
            # the back-substitution should nevertheless be correct.
            assert all(_holds(c, payload) for c in constraints)
    assert unsat_seen >= 3 and sat_seen >= 3, (unsat_seen, sat_seen)


def test_omega_refutation_tags_name_contributors_only():
    # 2x >= 1 and 2x <= 1: gcd tightening turns the pair into x >= 1 and
    # x <= 0 — a pure-inequality divisibility conflict with no equalities
    # for the upstream elimination pass to work with.
    constraints = [
        Constraint(expr({"x": 2}, -1), ">=", tag="lo"),
        Constraint(expr({"x": 2}, -1), "<=", tag="hi"),
        Constraint(expr({"z": 1}, -7), "<=", tag="unrelated"),
    ]
    verdict, tags = _omega_check(constraints)
    assert verdict == "unsat"
    flat = set().union(*[t if isinstance(t, frozenset) else {t} for t in [tags]])
    assert flat == {"lo", "hi"}


# ----------------------------------------------------------------------
# The commuting-disequality mod-3 core (the PR's headline regression)
# ----------------------------------------------------------------------
#: minimal unsatisfiable core extracted from ``position-hard-comm-0``: a
#: pure-inequality/equality mod-3 conflict whose rational relaxation is
#: feasible and on which plain branch-and-bound diverges
_COMM_MOD3_CORE = [
    ({"v0": -1, "v1": -1, "v2": -1, "v3": 1, "v4": -1, "v5": -1}, 0, "<="),
    ({"v0": 1, "v4": 1, "v5": 1, "v1": 1, "v6": 1, "v2": 1}, -1, "<="),
    ({"v7": 1, "v8": -1, "v9": 1, "v10": 1, "v6": -1, "v2": -1, "v11": -1}, 0, "<="),
    ({"v8": 1, "v11": 1, "v12": 1, "v10": -1, "v13": -1, "v14": 1, "v5": -1, "v1": -1, "v15": -1}, 0, "<="),
    ({"v16": -1}, 0, "<="),
    ({"v17": 1, "v3": -1, "v18": -1}, 0, "<="),
    ({"v18": 1, "v1": 1, "v2": 1, "v19": -1}, 0, "<="),
    ({"v1": -1}, 0, "<="),
    ({"v0": -1, "v20": 1, "v21": 1, "v1": -1, "v2": -1, "v19": 1, "v22": -1, "v17": -1, "v3": 1}, 0, "=="),
    ({"v0": 1}, 0, "=="),
    ({"v20": 1, "v23": -1, "v21": 1, "v18": -1, "v1": -1, "v2": -1, "v19": 1}, 0, "=="),
    ({"v20": 1}, 0, "=="),
    ({"v24": -1, "v5": -1, "v1": -1, "v6": -1, "v2": -1}, 1, "=="),
    ({"v24": 1}, 0, "=="),
    ({"v15": 1, "v16": 1, "v12": -1, "v14": -1, "v7": -1, "v13": 1, "v9": -1}, 1, "<="),
    ({"v19": 1, "v17": -1}, 1, "<="),
    ({"v10": -1, "v6": 1, "v2": 1}, 0, "=="),
    ({"v10": 1}, 0, "=="),
    ({"v25": 3, "v7": -1, "v8": -1, "v12": -2, "v14": -2, "v13": 2, "v9": -1, "v10": 1, "v5": 2, "v1": 3, "v6": 1, "v2": 2, "v11": -1, "v15": 2, "v22": -1, "v23": -1, "v3": -1, "v21": -1}, 0, "=="),
]


def _comm_core_constraints(extra=()):
    constraints = [
        Constraint(expr(coeffs, const), relation, tag=f"core-{index}")
        for index, (coeffs, const, relation) in enumerate(_COMM_MOD3_CORE)
    ]
    constraints.extend(extra)
    return constraints


def test_commuting_mod3_core_is_refuted_by_cuts():
    outcome = check_integer_feasibility(_comm_core_constraints(), max_nodes=200)
    assert not outcome.feasible


def test_commuting_mod3_core_diverges_without_cuts():
    # The same system exhausts its budget when cutting planes and the Omega
    # pass are disabled — the regression this PR exists to fix.
    with pytest.raises(ResourceLimit):
        check_integer_feasibility(
            _comm_core_constraints(), max_nodes=200, cut_rounds=0, omega=False
        )


def test_cut_conflict_core_names_only_contributing_assertions():
    extra = [
        Constraint(expr({"w0": 1}, -9), "<=", tag="bystander-0"),
        Constraint(expr({"w1": 1, "w0": 1}, 3), ">=", tag="bystander-1"),
    ]
    outcome = check_integer_feasibility(_comm_core_constraints(extra), max_nodes=200)
    assert not outcome.feasible
    assert outcome.conflict
    assert all(isinstance(tag, str) and tag.startswith("core-") for tag in outcome.conflict)


def test_solver_config_lia_cuts_ablation_switch():
    from repro.lia import LiaConfig
    from repro.solver import SolverConfig

    shared = LiaConfig()
    ablated = SolverConfig(lia=shared, lia_cuts=False)
    assert ablated.lia.gomory_cut_rounds == 0
    assert ablated.lia.max_gomory_cuts == 0
    assert not ablated.lia.omega_elimination
    # The zeroing happens on a copy: a shared LiaConfig (and configs built
    # from it later) keeps its cutting planes.
    assert shared.gomory_cut_rounds > 0
    assert SolverConfig(lia=shared).lia.gomory_cut_rounds > 0


def test_integer_feasibility_matches_bruteforce_on_random_systems():
    rng = random.Random(99)
    radius = 2
    for _ in range(40):
        variables, constraints = _random_system(
            rng, num_vars=3, num_constraints=4, radius=radius
        )
        try:
            outcome = check_integer_feasibility(constraints, max_nodes=2000)
        except ResourceLimit:
            continue
        has_solution = any(
            all(_holds(c, point) for c in constraints)
            for point in _integer_points(variables, radius)
        )
        assert outcome.feasible == has_solution
        if outcome.feasible:
            assert all(_holds(c, outcome.model) for c in constraints)
