"""Tests for tag automata, LenTag, ε-concatenation and Parikh formulae (§4)."""

from repro.automata import compile_regex
from repro.core import parikh
from repro.core.tag_automaton import concat_for_variables, len_tag
from repro.core.tags import Tag, length_tag, position_tag, symbol_tag, symbol_of, variable_of
from repro.core.witness import assignment_from_run
from repro.lia import eq, conj, ge, var

from helpers import solve_lia


def test_tag_basics():
    tag = symbol_tag("a")
    assert tag.kind == "S"
    assert tag.var_name("pre") == "pre#S[a]"
    assert symbol_of({tag, length_tag("x")}) == "a"
    assert variable_of({tag, length_tag("x")}) == "x"
    assert position_tag("x", 2) != position_tag("x", 3)


def test_len_tag_structure():
    nfa = compile_regex("(ab)*", alphabet="ab")
    ta = len_tag(nfa, "x")
    assert len(ta.transitions) == nfa.num_transitions()
    for transition in ta.transitions:
        kinds = sorted(tag.kind for tag in transition.tags)
        assert kinds == ["L", "S"]
        assert transition.variable == "x"


def test_eps_concat_links_automata():
    automata = {
        "x": compile_regex("ab", alphabet="ab"),
        "y": compile_regex("b", alphabet="ab"),
    }
    combined, info = concat_for_variables(automata, ["x", "y"])
    assert info.order == ("x", "y")
    # There must be at least one ε-connector (empty tag set).
    assert any(not t.tags for t in combined.transitions)
    # Every state belongs to one of the variables.
    assert set(info.state_var.values()) == {"x", "y"}


def test_parikh_formula_counts_lengths():
    automata = {
        "x": compile_regex("(ab)*", alphabet="ab"),
        "y": compile_regex("a*", alphabet="ab"),
    }
    combined, _ = concat_for_variables(automata, ["x", "y"])
    enc = parikh.encode(combined, prefix="q.")
    # Ask for a run with len(x) = 4 and len(y) = 3.
    formula = conj(
        [
            enc.formula,
            eq(enc.tag_count(length_tag("x")), 4),
            eq(enc.tag_count(length_tag("y")), 3),
        ]
    )
    result = solve_lia(formula)
    assert result.is_sat
    run = parikh.run_from_model(enc, result.model)
    assert run is not None
    words = assignment_from_run(run)
    assert words["x"] == "abab"
    assert words["y"] == "aaa"


def test_parikh_formula_rejects_impossible_lengths():
    automata = {"x": compile_regex("(ab)*", alphabet="ab")}
    combined, _ = concat_for_variables(automata, ["x"])
    enc = parikh.encode(combined)
    # (ab)* has no word of odd length.
    formula = conj([enc.formula, eq(enc.tag_count(length_tag("x")), 3)])
    result = solve_lia(formula)
    assert result.is_unsat


def test_parikh_formula_empty_word_run():
    automata = {"x": compile_regex("(ab)*", alphabet="ab")}
    combined, _ = concat_for_variables(automata, ["x"])
    enc = parikh.encode(combined)
    formula = conj([enc.formula, eq(enc.tag_count(length_tag("x")), 0)])
    result = solve_lia(formula)
    assert result.is_sat
    run = parikh.run_from_model(enc, result.model)
    assert run == []  # empty run: x is the empty word


def test_parikh_formula_symbol_counts():
    automata = {"x": compile_regex("(a|b)*", alphabet="ab")}
    combined, _ = concat_for_variables(automata, ["x"])
    enc = parikh.encode(combined)
    # 2 a's and 1 b.
    formula = conj(
        [
            enc.formula,
            eq(enc.tag_count(symbol_tag("a")), 2),
            eq(enc.tag_count(symbol_tag("b")), 1),
        ]
    )
    result = solve_lia(formula)
    assert result.is_sat
    run = parikh.run_from_model(enc, result.model)
    word = assignment_from_run(run)["x"]
    assert sorted(word) == ["a", "a", "b"]


def test_parikh_unused_tag_counts_as_zero():
    automata = {"x": compile_regex("a", alphabet="ab")}
    combined, _ = concat_for_variables(automata, ["x"])
    enc = parikh.encode(combined)
    assert enc.tag_count(length_tag("nonexistent")).is_constant()
