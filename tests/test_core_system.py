"""Tests for the system construction (§5.3, §6.5, Appendix C).

End-to-end LIA solving of the A^III encoding is expensive in pure Python, so
most of these tests validate structural properties of the construction (copy
counts, tag inventory, fairness of the formula) plus a couple of very small
end-to-end cases; the solver-level component splitting keeps the expensive
path off the common benchmarks.
"""

import pytest

from repro.automata import compile_regex
from repro.core.predicates import Disequality, LengthEquality, NotPrefixOf
from repro.core.system import build_system_automaton, encode_system
from repro.core.single import encode_single
from repro.lia import formula_size, var, eq, conj
from repro.lia.terms import And


def small_automata():
    return {
        "x": compile_regex("a|b", alphabet="ab"),
        "y": compile_regex("a|b", alphabet="ab"),
        "z": compile_regex("a|b", alphabet="ab"),
    }


def test_system_automaton_has_2k_plus_1_copies():
    automata = small_automata()
    base_states = sum(len(a.states) for a in automata.values())
    automaton, info = build_system_automaton(automata, ["x", "y", "z"], num_predicates=2)
    assert len(automaton.states) == base_states * (2 * 2 + 1)
    # Accepting states sit at odd levels only: levels 1, 3, 5.
    assert automaton.final
    assert info.order == ("x", "y", "z")


def test_system_automaton_mismatch_and_copy_tags():
    automata = small_automata()
    automaton, _ = build_system_automaton(automata, ["x", "y"], num_predicates=1)
    kinds = {tag.kind for tag in automaton.tags()}
    assert {"S", "L", "P", "MD"} <= kinds
    # With a single predicate there is no room for copy tags (they start at level 2).
    predicates = {tag.args[2] for tag in automaton.tags() if tag.kind == "MD"}
    assert predicates == {1}


def test_system_automaton_copy_tags_with_two_predicates():
    automata = small_automata()
    automaton, _ = build_system_automaton(automata, ["x", "y", "z"], num_predicates=2)
    kinds = {tag.kind for tag in automaton.tags()}
    assert "CD" in kinds


def test_encode_system_formula_polynomial_size():
    """Theorem 5.3: the formula stays polynomial in the number of disequalities."""
    automata = small_automata()
    sizes = []
    for count in (1, 2, 3):
        predicates = [Disequality(("x",), ("y",)), Disequality(("x",), ("z",)), Disequality(("y",), ("z",))][:count]
        encoding = encode_system(predicates, automata, prefix=f"k{count}.")
        sizes.append(formula_size(encoding.formula))
    assert sizes[0] < sizes[1] < sizes[2]
    # Far from the 2^Θ(n log n) blow-up of the naive ordering enumeration.
    assert sizes[2] < 40 * sizes[0]


def test_encode_system_with_zero_mismatch_predicates_lengths_only():
    automata = {"x": compile_regex("(ab)*", alphabet="ab")}
    encoding = encode_system([LengthEquality("n", ("x",))], automata)
    from helpers import solve_lia
    from repro.lia import ge

    result = solve_lia(conj([encoding.formula, ge(var("n"), 4)]))
    assert result.is_sat
    assert result.model["n"] % 2 == 0


def test_encode_system_exposes_lengths():
    automata = small_automata()
    encoding = encode_system([Disequality(("x",), ("y",))], automata, extra_variables=["z"])
    assert encoding.length_of("z").variables()  # the counter exists


@pytest.mark.skip(reason="A^III end-to-end solving needs several minutes on the pure-Python LIA backend; run manually")
def test_system_end_to_end_shared_variable():
    """A tiny shared-variable system solved through the A^III encoding."""
    from helpers import solve_lia

    automata = small_automata()
    predicates = [Disequality(("x",), ("y",)), Disequality(("x",), ("z",))]
    encoding = encode_system(predicates, automata)
    result = solve_lia(encoding.formula, timeout=600.0)
    assert result.is_sat


def test_single_and_system_agree_on_one_predicate_formula_semantics():
    """Both constructions encode the same predicate (structural smoke check)."""
    automata = {
        "x": compile_regex("a", alphabet="ab"),
        "y": compile_regex("a", alphabet="ab"),
    }
    predicate = Disequality(("x",), ("y",))
    single = encode_single(predicate, automata)
    system = encode_system([predicate], automata)
    assert isinstance(single.formula, And)
    assert isinstance(system.formula, And)
    # x and y are forced to "a": the single construction refutes the predicate.
    from helpers import solve_lia

    assert solve_lia(single.formula).is_unsat
