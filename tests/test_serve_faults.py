"""Fleet chaos: dying and hanging workers never cost a verdict or a response.

These tests drive a real server whose jobs carry fault triggers
(:mod:`repro.testing.faults` riding the worker budget hook, including the
``kill`` action — ``os._exit`` mid-job, the closest a test gets to an
OOM-kill).  The serve layer's two promises under chaos mirror the PR-6
in-process ones:

1. **never a wrong verdict** — a faulted job answers the true verdict
   (after a retry) or a structured ``unknown``, never the opposite verdict;
2. **never a dropped response** — every request is answered, even when the
   whole fleet is down or hung past the deadline.
"""

import time

import pytest

from helpers import ServeServerProc
from repro.serve.protocol import synthetic_outcome

SAT_SCRIPT = '(set-logic QF_S)(declare-const x String)(assert (= x "ab"))(check-sat)'
UNSAT_SCRIPT = (
    '(set-logic QF_S)(declare-const x String)'
    '(assert (= x "a"))(assert (= x "b"))(check-sat)'
)

KILL = {"stage": "enter:normalize", "at": 1, "action": "kill"}


@pytest.fixture(scope="module")
def server():
    proc = ServeServerProc(
        "--workers", "2",
        "--retries", "2",
        "--enable-fault-injection",
        "--timeout", "30",
    )
    yield proc
    proc.kill()


def _stats(server):
    with server.client() as client:
        return client.stats()["stats"]


def test_injection_requires_opt_in():
    plain = ServeServerProc("--workers", "1")
    try:
        with plain.client() as client:
            response = client.solve(SAT_SCRIPT, inject=[KILL])
            assert response["ok"] is False
            assert "fault injection is disabled" in response["error"]
    finally:
        plain.kill()


def test_worker_killed_mid_job_is_retried(server):
    # The kill fires on attempt 0 only ("attempts": 1): the pool breaks,
    # the server rebuilds it and the retry answers the true verdict.
    before = _stats(server)
    with server.client() as client:
        response = client.solve(
            UNSAT_SCRIPT,
            name="kill-once",
            inject=[dict(KILL, attempts=1)],
        )
    assert response["ok"]
    assert response["verdicts"] == ["unsat"]
    after = _stats(server)
    assert after["worker_restarts"] > before["worker_restarts"]
    assert after["job_retries"] > before["job_retries"]


def test_worker_kept_dying_answers_structured_unknown(server):
    # The kill fires on every attempt: retries exhaust and the job answers
    # a structured unknown naming the worker death — never a wrong verdict,
    # never silence.
    with server.client() as client:
        response = client.solve(
            UNSAT_SCRIPT,
            name="kill-always",
            inject=[KILL],
        )
    assert response["ok"]
    assert response["verdicts"] == ["unknown"]
    reasons = [line for line in response["output"] if line.startswith("; unknown:")]
    assert len(reasons) == 1
    assert "worker died" in reasons[0] or "timeout" in reasons[0]


def test_hung_fleet_is_abandoned_at_deadline(server):
    # Both strategies sleep far past deadline + grace inside an
    # uncancellable section (the delay action never polls): the server
    # stops waiting and synthesises structured timeout verdicts.
    before = _stats(server)
    hang = {"stage": "enter:normalize", "at": 1, "action": "delay", "delay": 12.0}
    started = time.time()
    with server.client() as client:
        response = client.solve(
            UNSAT_SCRIPT,
            name="hang",
            timeout=1.0,
            inject=[hang],
        )
    elapsed = time.time() - started
    assert response["ok"]
    assert response["verdicts"] == ["unknown"]
    assert any("timeout" in line for line in response["output"])
    assert elapsed < 11.0, "server waited for the hung workers instead of answering"
    after = _stats(server)
    assert after["portfolio_abandoned"] > before["portfolio_abandoned"]
    # Let the sleepers wake, observe their (long-set) cancel flags and
    # release their slots before the next test needs the workers.
    time.sleep(max(0.0, started + 14.0 - time.time()))


def test_injected_interrupt_never_flips_verdict(server):
    # A KeyboardInterrupt mid-run unwinds that strategy; the race still
    # answers the true verdict through the surviving strategy.
    with server.client() as client:
        response = client.solve(
            SAT_SCRIPT,
            name="interrupt",
            inject=[{
                "strategy": "witness",
                "stage": "enter:normalize",
                "at": 1,
                "action": "interrupt",
            }],
        )
    assert response["ok"]
    assert response["verdicts"] == ["sat"]
    assert response["strategy"] == "encoding"


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_fault_sweep_never_wrong_verdict(server, seed):
    # Random single faults (raise/exhaust/interrupt) at early coordinates
    # across both strategies: the answer is the true verdict or a lawful
    # structured unknown — the full sweep logic of tests/test_faults.py,
    # across the process boundary.
    import random

    rng = random.Random(seed)
    sites = ("enter:normalize", "enter:decompose", "normalize", "automata.*")
    cases = [(SAT_SCRIPT, "sat"), (UNSAT_SCRIPT, "unsat")]
    with server.client() as client:
        for script, truth in cases:
            trigger = {
                "stage": rng.choice(sites),
                "at": rng.randint(1, 6),
                "action": rng.choice(["raise", "exhaust", "interrupt"]),
            }
            response = client.solve(script, name=f"sweep-{seed}", inject=[trigger])
            assert response["ok"], response
            assert len(response["verdicts"]) == 1
            verdict = response["verdicts"][0]
            assert verdict in (truth, "unknown"), (
                f"wrong verdict under fault {trigger}: {verdict} != {truth}"
            )
            if verdict == "unknown":
                assert any(
                    line.startswith("; unknown:") for line in response["output"]
                ), "unknown without a structured reason"


def test_responses_never_dropped_under_chaos(server):
    # Every request in a burst mixing clean and faulted jobs is answered.
    import threading

    responses = {}

    def submit(tag, inject):
        with server.client() as client:
            responses[tag] = client.solve(
                SAT_SCRIPT if tag % 2 else UNSAT_SCRIPT,
                name=f"burst-{tag}",
                timeout=20,
                inject=inject,
            )

    plans = [
        (0, []),
        (1, []),
        (2, [dict(KILL, attempts=1)]),
        (3, [{"stage": "enter:normalize", "at": 1, "action": "raise"}]),
        (4, []),
    ]
    threads = [
        threading.Thread(target=submit, args=(tag, inject)) for tag, inject in plans
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sorted(responses) == [0, 1, 2, 3, 4]
    for tag, inject in plans:
        response = responses[tag]
        assert response["ok"], (tag, response)
        truth = "sat" if tag % 2 else "unsat"
        assert response["verdicts"][0] in (truth, "unknown"), (tag, response)


def test_synthetic_outcomes_are_structured():
    outcome = synthetic_outcome("witness", 3, "internal_error@serve.worker [died]")
    assert outcome.verdicts == ["unknown"] * 3
    assert all("internal_error" in reason for reason in outcome.reasons)
    assert not outcome.decided
