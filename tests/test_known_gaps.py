"""Regression pins for the two known ``unknown`` gaps (ROADMAP carry-overs).

The pipeline workload generates these shapes at scale, so they get pinned
here as exact instances:

* ``gap-levi-3split`` — three structural splits of one haystack with
  shared variables: the budgeted Levi alignment pre-pass gives out;
* ``gap-var-needle-*`` — variable-needle ``indexof``/``replace`` over
  non-flat haystack languages: past the MBQI flatness limit.

The contract under test: the solver answers a *structured* unknown
(typed :class:`~repro.budget.UnknownReason`) — never a wrong verdict,
never an untyped excuse, never an internal error.  The strict-xfail
twins assert the *correct* decision: when a future PR closes a gap, its
xfail flips to XPASS and fails the suite, forcing the pin (and the
generator's curation rules) to be updated deliberately.
"""

import pytest

from repro.benchgen.pipelines import gap_problems
from repro.budget import UnknownKind, UnknownReason
from repro.solver import PositionSolver, SolverConfig
from repro.solver.result import Status
from repro.strings.semantics import eval_problem

GAPS = {name: (problem, expected) for name, problem, expected in gap_problems()}


def _check(name):
    problem, expected = GAPS[name]
    result = PositionSolver(SolverConfig(timeout=10.0)).check(problem)
    return problem, expected, result


@pytest.mark.parametrize("name", sorted(GAPS))
def test_gap_answers_structured_unknown_never_wrong(name):
    problem, expected, result = _check(name)
    # Never a wrong verdict: a definite answer must match the ground truth
    # (these instances are small enough to decide by hand/enumeration) and
    # a sat must carry a verified model.
    if result.status in (Status.SAT, Status.UNSAT):
        assert result.status.value == expected, (name, result.status, expected)
        if result.status is Status.SAT:
            model = result.model
            assert model is not None
            assert eval_problem(problem, model.strings, model.integers)
        pytest.fail(
            f"{name} now decides ({result.status.value}) — the gap closed: "
            "flip the strict xfail below and update the generator curation"
        )
    # The pinned behaviour: structured unknown, no internal errors.
    assert result.status is Status.UNKNOWN, (name, result.status)
    assert isinstance(result.reason, UnknownReason), (name, result.reason)
    assert result.reason.kind in (
        UnknownKind.INCOMPLETE,
        UnknownKind.FRAGMENT,
        UnknownKind.TIMEOUT,
        UnknownKind.STEP_LIMIT,
    ), (name, result.reason)
    assert result.reason.stage, name
    assert int(result.stats.get("internal_errors", 0)) == 0, result.stats


@pytest.mark.parametrize("name", sorted(GAPS))
@pytest.mark.xfail(strict=True, reason="known gap: decided verdicts flip this to XPASS")
def test_gap_decides_correctly_once_fixed(name):
    problem, expected, result = _check(name)
    assert result.status in (Status.SAT, Status.UNSAT), result.reason
    assert result.status.value == expected


def test_levi_3split_ground_truth_by_enumeration():
    """Independent evidence for the recorded ground truth: exhaustively
    refute `s = x·ab·y ∧ s = y·ba·x ∧ s = z·aa·z` for every |s| ≤ 8."""
    from itertools import product

    problem, expected = GAPS["gap-levi-3split"]
    assert expected == "unsat"
    witnesses = 0
    for n in range(9):
        for s in ("".join(w) for w in product("ab", repeat=n)):
            for i in range(n - 1):
                if s[i : i + 2] != "ab":
                    continue
                x, y = s[:i], s[i + 2 :]
                if y + "ba" + x != s:
                    continue
                for j in range(n - 1):
                    if s[j : j + 2] == "aa" and s[:j] == s[j + 2 :]:
                        witnesses += 1
    assert witnesses == 0


def test_var_needle_ground_truths_by_enumeration():
    """The sat pins really are sat: check the hand-picked witnesses."""
    from repro.strings.semantics import str_indexof, str_replace

    # gap-var-needle-absent: s = "ba" ∈ (ab|ba)*, n = "aa", indexof = -1
    assert str_indexof("ba", "aa", 0) == -1
    # gap-var-needle-fixpoint: replace("ba", "aa", "bb") is the identity
    assert str_replace("ba", "aa", "bb") == "ba"
