"""Tests for the SMT-LIB 2.6 frontend (lexer, parser, printer, runner).

Covers the lexer corner cases, the conjunctive-fragment translation rules
(including polarity handling and the ``str.contains`` argument swap), the
parse → print → parse round trip over the committed corpus, and the
CLI/runner path against the native-AST solver on a corpus subset.
"""

import glob
import os

import pytest

from repro import PositionSolver, SolverConfig
from repro.smtlib import (
    PrintError,
    ScriptRunner,
    SmtLibError,
    SString,
    atom_to_sexpr,
    parse_problem,
    parse_script,
    problem_to_smtlib,
    read_sexprs,
    run_script,
)
from repro.smtlib.__main__ import main as cli_main
from repro.strings.ast import (
    Contains,
    LengthConstraint,
    Problem,
    RegexMembership,
    StrAtAtom,
    WordEquation,
)

CORPUS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "benchmarks", "smtlib")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.smt2")))

#: fast corpus subset for tests that actually solve (the full corpus runs
#: in the CI smoke step, benchmarks/smtlib/check_corpus.py)
FAST_SETS = ("thefuck-like", "django-like")
FAST_FILES = [p for p in CORPUS_FILES if os.path.basename(p).startswith(FAST_SETS)]


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
def test_lexer_strings_comments_and_quoted_symbols():
    forms = read_sexprs('; comment\n(assert (= x "a""b")) (|odd name| 12)')
    assert len(forms) == 2
    (assert_form, _), (quoted_form, _) = forms
    literal = assert_form[1][2]
    assert isinstance(literal, SString) and literal == 'a"b'
    assert quoted_form == ["odd name", 12]


def test_lexer_paren_literals_are_not_structural():
    # the one-character literal "(" (or a quoted |)| symbol) must not be
    # confused with a structural paren
    forms = read_sexprs('(assert (= x "("))')
    assert forms[0][0][1][2] == "("
    forms = read_sexprs('(echo ")")')
    assert isinstance(forms[0][0][1], SString)
    assert run_script(
        '(set-info :alphabet "ab()")(declare-const x String)'
        '(assert (= x "("))(check-sat)'
    ) == ["sat"]


def test_oversized_range_requires_declared_alphabet():
    wide = '(declare-const x String)(assert (str.in_re x (re.range "!" "z")))'
    with pytest.raises(SmtLibError):
        parse_script(wide)
    # an explicit declaration makes the same script legal
    script = parse_script('(set-info :alphabet "mz!")' + wide)
    assert script.alphabet == ("m", "z", "!")


def test_lexer_rejects_unbalanced_input():
    with pytest.raises(SmtLibError):
        read_sexprs("(assert (= x y)")
    with pytest.raises(SmtLibError):
        read_sexprs('(echo "open)')


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def test_parser_translates_the_fragment():
    problem = parse_problem(
        """
        (set-logic QF_SLIA)
        (set-info :alphabet "ab")
        (declare-const x String)
        (declare-const y String)
        (declare-const c String)
        (declare-const i Int)
        (assert (str.in_re x (re.+ (str.to_re "a"))))
        (assert (not (str.contains x "b")))
        (assert (and (str.prefixof "a" x) (not (= x y))))
        (assert (= c (str.at y i)))
        (assert (or (< i 2) (> (+ i (str.len x)) 7)))
        """
    )
    assert len(problem.atoms) == 6
    assert isinstance(problem.atoms[0], RegexMembership)
    contains = problem.atoms[1]
    assert isinstance(contains, Contains) and not contains.positive
    # SMT-LIB (str.contains x "b"): x is the haystack, "b" the needle.
    assert contains.haystack[0].name == "x"
    assert contains.needle[0].value == "b"
    assert isinstance(problem.atoms[3], WordEquation) and not problem.atoms[3].positive
    assert isinstance(problem.atoms[4], StrAtAtom)
    assert isinstance(problem.atoms[5], LengthConstraint)
    assert problem.alphabet == ("a", "b")


def test_parser_negation_pushes_through_or():
    problem = parse_problem(
        """
        (set-info :alphabet "ab")
        (declare-const x String)
        (declare-const y String)
        (assert (not (or (= x y) (str.prefixof x y))))
        """
    )
    assert len(problem.atoms) == 2
    assert not problem.atoms[0].positive and not problem.atoms[1].positive


def test_alphabet_inference_ignores_non_assert_literals():
    # Complements are alphabet-relative: a stray literal in an echo or
    # info value must not enlarge the inferred alphabet (it would flip
    # this unsat complement query to sat).
    base = (
        "(declare-const x String)\n"
        '(assert (not (str.in_re x (re.* (re.union (str.to_re "a") (str.to_re "b"))))))\n'
        "(check-sat)\n"
    )
    assert run_script(base) == ["unsat"]
    assert run_script(base + '(echo "done")') == ["unsat", "done"]
    assert run_script('(set-info :source "xyz")\n' + base)[0] == "unsat"


def test_parser_distinct_polarities():
    header = (
        '(set-info :alphabet "ab")(declare-const x String)'
        "(declare-const y String)(declare-const z String)"
    )
    # positive n-ary distinct = conjunction of pairwise disequalities
    problem = parse_problem(header + "(assert (distinct x y z))")
    assert len(problem.atoms) == 3
    assert all(isinstance(a, WordEquation) and not a.positive for a in problem.atoms)
    # negated binary distinct = one equality
    problem = parse_problem(header + "(assert (not (distinct x y)))")
    assert len(problem.atoms) == 1 and problem.atoms[0].positive
    # negated n-ary distinct means "some pair equal" — a disjunction the
    # conjunctive fragment cannot represent; it must be rejected, never
    # silently translated into the (wrong) conjunction of equalities
    with pytest.raises(SmtLibError):
        parse_problem(header + "(assert (not (distinct x y z)))")


def test_parser_negated_int_distinct_is_a_disjunction_of_equalities():
    header = "(declare-const i Int)(declare-const j Int)(declare-const k Int)"
    problem = parse_problem(header + "(assert (not (distinct i j k)))")
    assert len(problem.atoms) == 1
    atom = problem.atoms[0]
    assert isinstance(atom, LengthConstraint)
    # Some pair equal: i=j with j=k+extra must satisfy it, all-distinct not.
    from repro.lia import evaluate

    assert evaluate(atom.formula, {"i": 1, "j": 1, "k": 5})
    assert evaluate(atom.formula, {"i": 3, "j": 7, "k": 7})
    assert not evaluate(atom.formula, {"i": 1, "j": 2, "k": 3})
    # Mixed with str.len terms the arguments stay Int-sorted.
    script = (
        '(set-info :alphabet "ab")(declare-const x String)(declare-const n Int)'
        "(assert (not (distinct (str.len x) n 2)))"
    )
    problem = parse_problem(script)
    assert len(problem.atoms) == 1


def test_parser_accepts_bool_constants_with_folding():
    header = '(set-info :alphabet "ab")(declare-const x String)'
    # plain constants
    assert parse_problem(header + "(assert true)").atoms == []
    falsy = parse_problem(header + "(assert false)").atoms
    assert len(falsy) == 1 and isinstance(falsy[0], LengthConstraint)
    # equality / distinct against a constant folds into the other side
    problem = parse_problem(header + '(assert (= true (str.prefixof "a" x)))')
    assert len(problem.atoms) == 1 and problem.atoms[0].positive
    problem = parse_problem(header + '(assert (= (str.contains x "b") false))')
    assert len(problem.atoms) == 1 and not problem.atoms[0].positive
    problem = parse_problem(header + '(assert (distinct (str.prefixof "a" x) false))')
    assert len(problem.atoms) == 1 and problem.atoms[0].positive
    # all-constant pairs decide themselves
    assert parse_problem(header + "(assert (= true true))").atoms == []
    falsy = parse_problem(header + "(assert (= true false))").atoms
    assert len(falsy) == 1 and isinstance(falsy[0], LengthConstraint)
    # absorbing / neutral elements of and, or, =>
    problem = parse_problem(header + '(assert (or false (= x "a") false))')
    assert len(problem.atoms) == 1
    assert parse_problem(header + '(assert (or (= x "a") true))').atoms == []
    problem = parse_problem(header + '(assert (not (and true (str.prefixof "b" x))))')
    assert len(problem.atoms) == 1 and not problem.atoms[0].positive
    problem = parse_problem(header + '(assert (=> true (= x "ab")))')
    assert len(problem.atoms) == 1
    assert parse_problem(header + '(assert (=> (= x "a") true))').atoms == []
    problem = parse_problem(header + '(assert (=> (str.prefixof "b" x) false))')
    assert len(problem.atoms) == 1 and not problem.atoms[0].positive
    # a string literal spelling "true" is NOT the Bool constant
    problem = parse_problem(header + '(assert (= x "true"))')
    assert len(problem.atoms) == 1 and isinstance(problem.atoms[0], WordEquation)
    # ... nor inside the pure-LIA translator: these are ill-sorted
    int_header = "(declare-const i Int)"
    with pytest.raises(SmtLibError):
        parse_problem(int_header + '(assert (or (<= i 0) "true"))')
    with pytest.raises(SmtLibError):
        parse_problem(int_header + '(assert (not (and (>= i 5) "true")))')
    # an iff between two non-constant Bool terms stays out of the fragment
    with pytest.raises(SmtLibError):
        parse_problem(
            header + '(assert (= (str.prefixof "a" x) (str.prefixof "b" x)))'
        )


def test_normalization_cache_stays_bounded():
    from repro.strings.normal_form import NormalizationCache, normalize

    cache = NormalizationCache(capacity=8)
    for index in range(40):
        problem = Problem(alphabet=tuple("ab"))
        problem.add(RegexMembership("x", "a" * (index % 30 + 1)))
        normalize(problem, cache=cache)
    assert len(cache.languages) <= 8
    assert len(cache.intersections) <= 8


def test_parser_rejects_negative_push_pop():
    with pytest.raises(SmtLibError):
        parse_script("(pop -1)")
    with pytest.raises(SmtLibError):
        parse_script("(push -2)")
    with pytest.raises(SmtLibError):
        run_script("(push 1)(pop 2)")  # pop past the base level


def test_parser_malformed_terms_raise_smtlib_errors():
    # malformed input must surface as SmtLibError (the CLI's contract),
    # never as a raw IndexError/ValueError traceback
    for bad in (
        "(assert (!))",
        '(declare-const x String)(assert (str.in_re x (re.*)))',
        '(declare-const x String)(assert (str.in_re x (re.union)))',
        '(declare-const x String)(assert (str.in_re x ((_ re.loop 3 1) (str.to_re "a"))))',
    ):
        with pytest.raises(SmtLibError):
            parse_script(bad)


def test_declared_alphabet_is_deduplicated():
    script = parse_script('(set-info :alphabet "aab")(declare-const x String)(assert (= x "a"))')
    assert script.alphabet == ("a", "b")


def test_parser_alphabet_inference_from_literals_and_ranges():
    script = parse_script(
        """
        (declare-const x String)
        (assert (str.in_re x (re.++ (re.range "b" "d") (str.to_re "z"))))
        (check-sat)
        """
    )
    assert script.alphabet == ("b", "c", "d", "z")


def test_parser_errors():
    with pytest.raises(SmtLibError):
        parse_problem("(assert (= x y))")  # undeclared constants
    with pytest.raises(SmtLibError):
        parse_problem("(declare-const x Bool)")  # unsupported sort
    with pytest.raises(SmtLibError):
        parse_problem("(declare-const x String)\n(assert (str.to_int x))")
    with pytest.raises(SmtLibError):
        parse_problem("(frobnicate)")
    with pytest.raises(SmtLibError):
        # positive disjunction of string atoms leaves the fragment
        parse_problem(
            "(set-info :alphabet \"ab\")(declare-const x String)"
            "(declare-const y String)(assert (or (= x y) (str.prefixof x y)))"
        )


def test_parse_problem_honours_push_pop():
    problem = parse_problem(
        """
        (set-info :alphabet "ab")
        (declare-const x String)
        (assert (str.in_re x (re.* (str.to_re "a"))))
        (push 1)
        (assert (= x "b"))
        (pop 1)
        (check-sat)
        """
    )
    assert len(problem.atoms) == 1


# ----------------------------------------------------------------------
# Printer round trip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_round_trip_fixpoint(path):
    with open(path) as handle:
        text = handle.read()
    problem = parse_problem(text)
    printed = problem_to_smtlib(problem)
    reparsed = parse_problem(printed)
    assert problem_to_smtlib(reparsed) == printed
    assert reparsed.alphabet == problem.alphabet
    assert len(reparsed.atoms) == len(problem.atoms)


def test_printer_rejects_raw_nfa_memberships():
    from repro.automata.nfa import Nfa

    problem = Problem(alphabet=tuple("ab"))
    problem.add(RegexMembership("x", Nfa.universal("ab")))
    with pytest.raises(PrintError):
        problem_to_smtlib(problem)


def test_printer_escapes_pattern_specials():
    problem = parse_problem(
        '(set-info :alphabet "a.*")(declare-const x String)'
        '(assert (str.in_re x (re.* (str.to_re ".*"))))'
    )
    rendered = atom_to_sexpr(problem.atoms[0])
    # the literal dot/star survive as string literals, not regex operators
    assert '(str.to_re ".")' in rendered and '(str.to_re "*")' in rendered
    printed = problem_to_smtlib(problem)
    assert problem_to_smtlib(parse_problem(printed)) == printed


# ----------------------------------------------------------------------
# Runner / CLI
# ----------------------------------------------------------------------
def test_runner_push_pop_model_and_core():
    outputs = run_script(
        """
        (set-logic QF_S)
        (set-info :alphabet "ab")
        (declare-const x String)
        (declare-const y String)
        (assert (! (str.in_re x (re.* (re.++ (str.to_re "a") (str.to_re "b")))) :named mx))
        (push 1)
        (assert (! (str.in_re y (re.* (re.++ (str.to_re "a") (str.to_re "b")))) :named my))
        (assert (! (not (= (str.++ x y) (str.++ y x))) :named comm))
        (check-sat)
        (get-unsat-core)
        (pop 1)
        (check-sat)
        (get-model)
        """,
        config=SolverConfig(timeout=30.0),
    )
    assert outputs[0] == "unsat"
    core = outputs[1].strip("()").split()
    assert set(core) == {"mx", "my", "comm"}
    assert outputs[2] == "sat"
    assert outputs[3].startswith("(") and "define-fun x () String" in outputs[3]


def test_runner_error_responses_and_echo():
    outputs = run_script(
        """
        (set-info :alphabet "ab")
        (declare-const x String)
        (echo "hello")
        (get-model)
        (assert (str.in_re x (re.* (str.to_re "a"))))
        (check-sat)
        (get-unsat-core)
        (exit)
        (check-sat)
        """
    )
    assert outputs == [
        "hello",
        '(error "no model available")',
        "sat",
        '(error "no unsat core available")',
    ]


@pytest.mark.parametrize("path", FAST_FILES, ids=[os.path.basename(p) for p in FAST_FILES])
def test_cli_agrees_with_native_ast_path(path):
    with open(path) as handle:
        text = handle.read()
    script = parse_script(text)
    runner = ScriptRunner(config=SolverConfig(timeout=30.0))
    runner.run_script(script, name=os.path.basename(path))
    assert runner.verdicts, "no check-sat answer"
    cli_verdict = runner.verdicts[-1]

    native = PositionSolver(SolverConfig(timeout=30.0)).check(parse_problem(text))
    assert cli_verdict == native.status.value
    if script.expected_status in ("sat", "unsat"):
        assert cli_verdict == script.expected_status


def test_cli_main_runs_a_file(tmp_path, capsys):
    path = tmp_path / "probe.smt2"
    path.write_text(
        '(set-info :alphabet "ab")\n(declare-const x String)\n'
        '(assert (str.in_re x (re.+ (str.to_re "a"))))\n(check-sat)\n(get-model)\n'
    )
    assert cli_main([str(path)]) == 0
    captured = capsys.readouterr()
    assert captured.out.splitlines()[0] == "sat"
    assert 'define-fun x () String "a"' in captured.out


def test_cli_main_reports_errors(tmp_path, capsys):
    path = tmp_path / "broken.smt2"
    path.write_text("(assert (= x y))\n")
    assert cli_main([str(path)]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_clean_unknown_exits_zero_with_reason_comment(tmp_path, capsys):
    # an undecidable-within-budget file: clean unknown, structured reason
    # comment, exit status 0 (a budget exhaustion is a completed run)
    path = tmp_path / "hard.smt2"
    path.write_text(
        '(set-info :alphabet "ab")\n'
        "(declare-const x String)\n(declare-const y String)\n"
        "(assert (= (str.++ x y x) (str.++ y x y)))\n"
        '(assert (str.in_re x (re.+ (re.union (str.to_re "ab") (str.to_re "ba")))))\n'
        "(assert (> (str.len x) 20))\n(check-sat)\n"
    )
    assert cli_main([str(path), "--timeout", "0.05"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0] == "unknown"
    assert lines[1].startswith("; unknown: ")
    # the comment names kind and stage, e.g. "timeout@eqsolver.noodlify"
    assert "@" in lines[1]


def test_runner_counts_internal_errors_for_exit_status():
    from repro.budget import Budget
    from repro.smtlib import ScriptRunner, parse_script
    from repro.testing import FaultInjector, FaultSpec

    runner = ScriptRunner(config=SolverConfig(timeout=30.0))
    script = parse_script(
        '(set-info :alphabet "ab")\n(declare-const x String)\n'
        '(assert (str.in_re x (re.+ (str.to_re "a"))))\n(check-sat)\n'
    )
    # patch a faulting budget into the session via a pre-check hook: run
    # the script normally first to confirm the clean path has no errors
    runner.run_script(script)
    assert runner.internal_errors == 0
    session = runner.session
    injector = FaultInjector([FaultSpec("*", at=1, action="raise")])
    result = session.check(budget=Budget(30.0, hook=injector))
    assert result.stats.get("internal_errors", 0) == 1


# ----------------------------------------------------------------------
# Extended string functions (str.substr / str.indexof / str.replace)
# ----------------------------------------------------------------------
def test_substr_parses_and_solves():
    out = run_script(
        '(set-info :alphabet "ab")\n'
        "(declare-const s String)\n(declare-const t String)\n"
        '(assert (str.in_re s (re.* (str.to_re "ab"))))\n'
        "(assert (>= (str.len s) 4))\n"
        "(assert (= t (str.substr s 1 2)))\n"
        "(assert (>= (str.len t) 1))\n"
        "(check-sat)\n(get-model)\n",
        config=SolverConfig(timeout=30.0),
    )
    assert out[0] == "sat"
    assert 'define-fun t () String "ba"' in out[1]


def test_indexof_direct_equality_and_nested_occurrence():
    out = run_script(
        '(set-info :alphabet "ab")\n'
        "(declare-const s String)\n(declare-const k Int)\n"
        '(assert (str.in_re s (re.* (str.to_re "ab"))))\n'
        '(assert (= k (str.indexof s "b" 0)))\n'
        "(assert (= k 1))\n"
        "(check-sat)\n",
        config=SolverConfig(timeout=30.0),
    )
    assert out == ["sat"]
    # nested in a comparison: goes through a fresh definitional constant
    out = run_script(
        '(set-info :alphabet "ab")\n'
        "(declare-const s String)\n"
        '(assert (str.in_re s (re.* (str.to_re "ab"))))\n'
        '(assert (>= (str.indexof s "b" 0) 1))\n'
        "(check-sat)\n",
        config=SolverConfig(timeout=30.0),
    )
    assert out == ["sat"]


def test_replace_parses_and_solves():
    out = run_script(
        '(set-info :alphabet "ab")\n'
        "(declare-const s String)\n(declare-const r String)\n"
        '(assert (str.in_re s (re.+ (str.to_re "ab"))))\n'
        "(assert (>= (str.len s) 4))\n"
        '(assert (= r (str.replace s "ab" "b")))\n'
        "(check-sat)\n(get-model)\n",
        config=SolverConfig(timeout=30.0),
    )
    assert out[0] == "sat"


def test_extended_functions_round_trip_to_a_fixpoint():
    text = (
        "(set-logic QF_SLIA)\n"
        '(set-info :alphabet "ab")\n'
        "(declare-const s String)\n(declare-const t String)\n(declare-const k Int)\n"
        "(assert (= t (str.substr s 0 2)))\n"
        '(assert (= k (str.indexof s "b" 1)))\n'
        '(assert (= t (str.replace s "a" "b")))\n'
        '(assert (str.contains (str.substr s 1 3) "ab"))\n'
        '(assert (>= (str.indexof s "a" 0) 0))\n'
        "(check-sat)\n"
    )
    printed = problem_to_smtlib(parse_problem(text), status="unknown")
    reprinted = problem_to_smtlib(parse_problem(printed), status="unknown")
    assert printed == reprinted
    assert "str.substr" in printed and "str.indexof" in printed and "str.replace" in printed


def test_extended_function_arity_errors():
    for body in (
        "(str.substr s 1)",
        "(str.indexof s)",
        '(str.replace s "a")',
    ):
        with pytest.raises(SmtLibError):
            parse_problem(
                "(declare-const s String)\n(declare-const t String)\n"
                f"(assert (= t {body}))\n(check-sat)\n"
            )


def test_negated_substr_equality():
    out = run_script(
        '(set-info :alphabet "ab")\n'
        "(declare-const t String)\n"
        '(assert (str.in_re t (str.to_re "a")))\n'
        '(assert (not (= t (str.substr "ab" 0 1))))\n'
        "(check-sat)\n",
        config=SolverConfig(timeout=30.0),
    )
    assert out == ["unsat"]


# ----------------------------------------------------------------------
# re.inter / re.comp
# ----------------------------------------------------------------------
def test_re_inter_and_re_comp_solve():
    out = run_script(
        '(set-info :alphabet "ab")\n'
        "(declare-const x String)\n"
        '(assert (str.in_re x (re.inter (re.* (str.to_re "ab")) (re.+ re.allchar))))\n'
        '(assert (str.in_re x (re.comp (str.to_re "ab"))))\n'
        "(check-sat)\n(get-model)\n",
        config=SolverConfig(timeout=30.0),
    )
    assert out[0] == "sat"
    assert '"abab"' in out[1]


def test_re_inter_and_re_comp_print_parse_fixpoint():
    text = (
        "(set-logic QF_S)\n"
        '(set-info :alphabet "ab")\n'
        "(declare-const x String)\n"
        '(assert (str.in_re x (re.inter (re.* (str.to_re "a")) (re.comp (str.to_re "aa")))))\n'
        "(check-sat)\n"
    )
    printed = problem_to_smtlib(parse_problem(text), status="unknown")
    reprinted = problem_to_smtlib(parse_problem(printed), status="unknown")
    assert printed == reprinted
    assert "re.inter" in printed and "re.comp" in printed


def test_re_comp_arity_error():
    with pytest.raises(SmtLibError):
        parse_problem(
            "(declare-const x String)\n"
            '(assert (str.in_re x (re.comp (str.to_re "a") (str.to_re "b"))))\n'
        )
