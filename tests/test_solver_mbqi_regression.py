"""Regression: the incremental MBQI loop matches the from-scratch loop.

``SolverConfig.incremental_lia`` switches the ¬contains refinement loop
between one incremental LIA assertion stack (the default) and a fresh
one-shot ``LiaSolver.check`` per round (the historical behaviour).  Both
must report the same SAT/UNSAT/UNKNOWN statuses, and SAT models must verify.
"""

import pytest

from repro.benchgen import position_hard
from repro.lia import ge
from repro.solver import PositionSolver, SolverConfig
from repro.solver.result import Status
from repro.strings.ast import (
    Contains,
    LengthConstraint,
    Problem,
    RegexMembership,
    str_len,
    term,
)
from repro.strings.semantics import eval_problem


def _chain(k, lang="a*", min_len=2):
    """k chained ¬contains predicates: forces one MBQI lemma per predicate."""
    problem = Problem(alphabet=tuple("abc"), name=f"nc-chain-{k}")
    names = [f"x{i}" for i in range(k + 1)]
    for name in names:
        problem.add(RegexMembership(name, lang))
    for i in range(k):
        problem.add(Contains(term(names[i + 1]), term(names[i]), positive=False))
    problem.add(LengthConstraint(ge(str_len(names[0]), min_len)))
    return problem


def _mbqi_instances():
    instances = [("chain-2", _chain(2), "sat")]
    for name, problem, expected in position_hard.primitive_not_contains(2, seed=13):
        instances.append((name, problem, expected))
    return instances


@pytest.mark.parametrize(
    "name,problem,expected",
    _mbqi_instances(),
    ids=[name for name, _p, _e in _mbqi_instances()],
)
def test_incremental_matches_scratch(name, problem, expected):
    results = {}
    for incremental in (True, False):
        config = SolverConfig(timeout=30.0, incremental_lia=incremental)
        result = PositionSolver(config).check(problem)
        results[incremental] = result
        if expected is not None and result.solved:
            assert result.status.value == expected
        if result.status is Status.SAT:
            assert eval_problem(problem, result.model.strings, result.model.integers)
    assert results[True].status == results[False].status


def test_incremental_uses_multiple_rounds_on_chains():
    """The chain family genuinely exercises the solve–refine loop."""
    result = PositionSolver(SolverConfig(timeout=30.0)).check(_chain(3))
    assert result.status is Status.SAT
    assert result.lia_queries >= 4
    assert result.stats.get("restarts", 0) >= result.lia_queries - 1
