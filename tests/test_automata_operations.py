"""Unit and property tests for NFA operations."""

from hypothesis import given, settings, strategies as st

from repro.automata import (
    Nfa,
    complement,
    concat,
    determinize,
    difference,
    equivalent,
    intersection,
    is_subset,
    optional,
    plus,
    remove_epsilon,
    repeat,
    reverse,
    star,
    union,
    words_up_to,
)


def test_union_combines_languages():
    nfa = union(Nfa.from_word("a"), Nfa.from_word("bb"))
    assert nfa.accepts("a")
    assert nfa.accepts("bb")
    assert not nfa.accepts("ab")


def test_concat_joins_languages():
    nfa = concat(Nfa.from_word("ab"), Nfa.from_word("cd"))
    assert nfa.accepts("abcd")
    assert not nfa.accepts("ab")
    assert not nfa.accepts("cd")


def test_star_iterates():
    nfa = star(Nfa.from_word("ab"))
    for word in ["", "ab", "abab", "ababab"]:
        assert nfa.accepts(word)
    assert not nfa.accepts("a")
    assert not nfa.accepts("aba")


def test_plus_requires_one_iteration():
    nfa = plus(Nfa.from_word("a"))
    assert not nfa.accepts("")
    assert nfa.accepts("a")
    assert nfa.accepts("aaa")


def test_optional_adds_epsilon():
    nfa = optional(Nfa.from_word("ab"))
    assert nfa.accepts("")
    assert nfa.accepts("ab")
    assert not nfa.accepts("abab")


def test_repeat_bounded():
    nfa = repeat(Nfa.from_word("a"), 2, 3)
    assert not nfa.accepts("a")
    assert nfa.accepts("aa")
    assert nfa.accepts("aaa")
    assert not nfa.accepts("aaaa")


def test_repeat_unbounded():
    nfa = repeat(Nfa.from_word("a"), 2, None)
    assert not nfa.accepts("a")
    assert nfa.accepts("aa")
    assert nfa.accepts("aaaaa")


def test_remove_epsilon_preserves_language():
    nfa = star(Nfa.from_word("ab"))
    eps_free = remove_epsilon(nfa)
    assert not eps_free.has_epsilon()
    for word in ["", "ab", "abab", "a", "ba"]:
        assert nfa.accepts(word) == eps_free.accepts(word)


def test_determinize_is_deterministic_and_equivalent():
    nfa = union(Nfa.from_word("ab"), Nfa.from_word("ac"))
    dfa, _ = determinize(nfa, "abc")
    for state in dfa.states:
        for symbol in "abc":
            assert len(dfa.successors(state, symbol)) == 1
    for word in ["ab", "ac", "a", "abc", ""]:
        assert nfa.accepts(word) == dfa.accepts(word)


def test_complement_flips_membership():
    nfa = Nfa.from_word("ab")
    comp = complement(nfa, "ab")
    assert not comp.accepts("ab")
    for word in ["", "a", "b", "ba", "abb"]:
        assert comp.accepts(word)


def test_intersection_of_star_languages():
    left = star(Nfa.from_word("ab"))
    right = star(union(Nfa.from_word("a"), Nfa.from_word("b")))
    inter = intersection(left, right)
    assert inter.accepts("abab")
    assert not inter.accepts("aab")


def test_difference_and_subset():
    small = Nfa.from_word("ab")
    big = star(union(Nfa.from_word("a"), Nfa.from_word("b")))
    assert is_subset(small, big, "ab")
    assert not is_subset(big, small, "ab")
    diff = difference(big, small, "ab")
    assert not diff.accepts("ab")
    assert diff.accepts("ba")


def test_reverse():
    nfa = Nfa.from_word("abc")
    rev = reverse(nfa)
    assert rev.accepts("cba")
    assert not rev.accepts("abc")


def test_equivalence_of_different_shapes():
    left = union(Nfa.from_word("a"), Nfa.from_word("a"))
    right = Nfa.from_word("a")
    assert equivalent(left, right, "a")


# ----------------------------------------------------------------------
# Property-based tests: operations agree with the set semantics on bounded
# enumerations of words.
# ----------------------------------------------------------------------
_words = st.lists(st.text(alphabet="ab", min_size=0, max_size=3), min_size=0, max_size=4)


@settings(max_examples=40, deadline=None)
@given(_words, _words)
def test_union_matches_set_union(words_a, words_b):
    nfa = union(Nfa.from_words(words_a), Nfa.from_words(words_b))
    expected = set(words_a) | set(words_b)
    produced = set(words_up_to(nfa, 3))
    assert produced == {w for w in expected if len(w) <= 3}


@settings(max_examples=40, deadline=None)
@given(_words, _words)
def test_intersection_matches_set_intersection(words_a, words_b):
    nfa = intersection(Nfa.from_words(words_a), Nfa.from_words(words_b))
    expected = set(words_a) & set(words_b)
    produced = set(words_up_to(nfa, 3))
    assert produced == expected


@settings(max_examples=40, deadline=None)
@given(_words, _words)
def test_concat_matches_set_concatenation(words_a, words_b):
    nfa = concat(Nfa.from_words(words_a), Nfa.from_words(words_b))
    expected = {a + b for a in words_a for b in words_b}
    produced = set(words_up_to(nfa, 6))
    assert produced == {w for w in expected if len(w) <= 6}


@settings(max_examples=30, deadline=None)
@given(_words)
def test_complement_is_involutive_on_membership(words):
    nfa = Nfa.from_words(words)
    comp = complement(nfa, "ab")
    double = complement(comp, "ab")
    for word in ["", "a", "b", "ab", "ba", "aab"]:
        assert nfa.accepts(word) == double.accepts(word)
        assert nfa.accepts(word) != comp.accepts(word)
