"""Picklability audit: everything that crosses the worker-process boundary.

The serve layer ships :class:`~repro.serve.protocol.JobSpec` objects into
``ProcessPoolExecutor`` workers and :class:`~repro.serve.protocol.JobOutcome`
objects back; the solver-side values they summarise (``SolveResult``,
``StringModel``, ``UnknownReason``, parsed problems) must survive a
pickle round-trip unchanged, or a future refactor could silently break
the fleet (e.g. a closure or lock smuggled onto a result object).
"""

import pickle

import pytest

from repro import (
    Session,
    SolverConfig,
    Status,
    UnknownKind,
    UnknownReason,
    WordEquation,
    lit,
    term,
)
from repro.serve.protocol import JobOutcome, JobSpec, synthetic_outcome
from repro.smtlib import parse_problem

SAT_SCRIPT = '(set-logic QF_S)(declare-const x String)(assert (= x "ab"))(check-sat)'
UNSAT_SCRIPT = (
    '(set-logic QF_S)(declare-const x String)'
    '(assert (= x "a"))(assert (= x "b"))(check-sat)'
)


def _roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def test_unknown_reason_roundtrip():
    reason = UnknownReason(UnknownKind.TIMEOUT, stage="solve", detail="budget gave out")
    back = _roundtrip(reason)
    assert back.kind == reason.kind
    assert back.stage == reason.stage
    assert back.detail == reason.detail
    assert str(back) == str(reason)


def test_sat_result_and_model_roundtrip():
    session = Session(config=SolverConfig(timeout=30.0))
    session.add(WordEquation(term("x"), term(lit("ab"))))
    result = session.check()
    assert result.status is Status.SAT
    back = _roundtrip(result)
    assert back.status is Status.SAT
    assert back.model is not None
    assert back.model.strings == result.model.strings
    assert back.model.integers == result.model.integers
    assert back.stats == result.stats
    # The model alone must also travel (responses may strip the result).
    model = _roundtrip(result.model)
    assert model.to_smtlib() == result.model.to_smtlib()


def test_unsat_result_roundtrip():
    session = Session(config=SolverConfig(timeout=30.0))
    session.add(WordEquation(term("x"), term(lit("a"))))
    session.add(WordEquation(term("x"), term(lit("b"))))
    result = session.check()
    assert result.status is Status.UNSAT
    back = _roundtrip(result)
    assert back.status is Status.UNSAT
    assert back.model is None


def test_unknown_result_roundtrip():
    session = Session(config=SolverConfig(timeout=30.0))
    session.add(WordEquation(term("x"), term(lit("ab"))))
    result = session.check(timeout=0.0)
    assert result.status in (Status.TIMEOUT, Status.UNKNOWN)
    back = _roundtrip(result)
    assert back.status is result.status
    assert isinstance(back.reason, UnknownReason)
    assert back.reason.kind == result.reason.kind
    assert str(back.reason) == str(result.reason)


@pytest.mark.parametrize("script", [SAT_SCRIPT, UNSAT_SCRIPT])
def test_parsed_problem_roundtrip(script):
    problem = parse_problem(script)
    back = _roundtrip(problem)
    # Problems print canonically; equality of the canonical form is the
    # round-trip check the dedup layer itself relies on.
    from repro.smtlib import problem_to_smtlib

    assert problem_to_smtlib(back) == problem_to_smtlib(problem)


def test_job_spec_roundtrip():
    spec = JobSpec(
        script=SAT_SCRIPT,
        name="audit",
        strategy="encoding",
        slot=3,
        generation=7,
        deadline=123.5,
        max_steps=1000,
        attempt=1,
        inject=({"stage": "enter:solve", "at": 1, "action": "raise"},),
    )
    back = _roundtrip(spec)
    assert back == spec


def test_job_outcome_roundtrip():
    outcome = synthetic_outcome("witness", 2, "worker died mid-job")
    outcome.stats["serve_warm_seeded"] = 5
    back = _roundtrip(outcome)
    assert back.strategy == outcome.strategy
    assert back.verdicts == outcome.verdicts
    assert back.reasons == outcome.reasons
    assert back.stats == outcome.stats
    assert back.decided == outcome.decided


def test_outcome_from_live_run_roundtrip():
    """A real worker-side outcome (the actual boundary payload) pickles."""
    from repro.serve.workers import run_job

    spec = JobSpec(script=UNSAT_SCRIPT, name="live", strategy="witness")
    outcome = run_job(spec)
    assert outcome.verdicts == ["unsat"]
    back = _roundtrip(outcome)
    assert back.verdicts == ["unsat"]
    assert back.output == outcome.output
    assert back.stats == outcome.stats
