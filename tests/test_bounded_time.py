"""Bounded-time solving: the budget layer's user-visible contract.

Three properties carry the robustness story:

* **promptness** — an adversarial instance checked under timeout ``t``
  returns within ``2·t`` (cooperative checkpoints reach every exploding
  loop: subset construction, noodlification, the reduction case product,
  the CDCL search, the LIA presolve);
* **truthful reasons** — an undecided result carries a structured
  :class:`repro.UnknownReason` whose kind and stage name where the budget
  actually gave out (no bare ``"unknown"`` strings);
* **interrupt-safe sessions** — a session that timed out or was
  interrupted mid-check stays usable, and a follow-up check with a larger
  budget answers exactly what a fresh solver would.

Deterministic variants (step limits, injectable clocks) complement the
wall-clock tests so the suite does not hinge on machine speed.
"""

import time

import pytest

from repro import (
    Budget,
    BudgetExceeded,
    LengthConstraint,
    PositionSolver,
    RegexMembership,
    Session,
    SolverConfig,
    Status,
    UnknownKind,
    UnknownReason,
    WordEquation,
    lit,
    str_len,
    term,
)
from repro.lia import ge
from repro.strings.ast import IndexOfAtom, Problem
from repro.lia.terms import LinExpr
from repro.testing import FaultInjector, FaultSpec, InjectedFault


#: generous slack over the contractual 2·t for CI machines under load
def _within(elapsed: float, t: float) -> bool:
    return elapsed <= max(2 * t, t + 1.0)


# ----------------------------------------------------------------------
# The adversarial mini-corpus: each instance explodes in a different stage
# ----------------------------------------------------------------------
def _blowup_automata_atoms():
    # Determinizing (a|b)*a(a|b)^n needs 2^n subsets; the negative
    # membership forces the complement, i.e. full subset construction.
    pattern = "(a|b)*a" + "(a|b)" * 18
    return [
        RegexMembership("x", pattern, positive=False),
        RegexMembership("x", "(ab)*", positive=True),
        LengthConstraint(ge(str_len("x"), 40)),
    ]


def _noodle_chain_atoms():
    # Overlapping Levi alignments: each equation aligns against the others
    # through shared variables, and the length bound forces deep splits.
    atoms = [
        WordEquation(term("x", "y", "x"), term("y", "x", "y")),
        WordEquation(term("y", "z", "y"), term("z", "y", "z")),
        WordEquation(term("z", "w", "z"), term("w", "z", "w")),
        LengthConstraint(ge(str_len("x"), 24)),
    ]
    atoms.append(RegexMembership("w", "(a|b)(a|b)*", positive=True))
    return atoms


def _reduction_product_atoms():
    # Each indexof contributes up to 4 reduction cases; eight of them max
    # out the case product while staying within max_reduction_cases.
    atoms = [
        RegexMembership("h", "(a|b)*", positive=True),
        LengthConstraint(ge(str_len("h"), 12)),
    ]
    for i in range(8):
        atoms.append(
            IndexOfAtom(
                result=LinExpr.var(f"i{i}"),
                haystack=term("h"),
                needle=term(lit("ab")),
                offset=LinExpr.constant(i),
            )
        )
    return atoms


_ADVERSARIAL = [
    ("automata-blowup", _blowup_automata_atoms),
    ("noodle-chain", _noodle_chain_atoms),
    ("reduction-product", _reduction_product_atoms),
]


@pytest.mark.parametrize("name,build", _ADVERSARIAL, ids=[n for n, _ in _ADVERSARIAL])
def test_adversarial_instances_return_within_twice_the_budget(name, build):
    t = 0.1
    solver = PositionSolver(SolverConfig(timeout=t))
    problem = Problem(atoms=build(), alphabet=("a", "b"))
    started = time.monotonic()
    result = solver.check(problem)
    elapsed = time.monotonic() - started
    assert _within(elapsed, t), f"{name}: {elapsed:.2f}s blows the 2·{t}s bound"
    if result.status in (Status.UNKNOWN, Status.TIMEOUT):
        reason = result.reason
        assert isinstance(reason, UnknownReason), f"{name}: untyped reason {reason!r}"
        assert reason.stage, f"{name}: reason lacks a stage: {reason}"
        if result.status is Status.TIMEOUT:
            assert reason.kind is UnknownKind.TIMEOUT
            assert reason.elapsed is not None
        # the rendering is the machine-readable form users grep for
        assert str(reason).startswith(reason.kind.value + "@")


def test_timeout_result_reports_stage_stats():
    solver = PositionSolver(SolverConfig(timeout=0.05))
    problem = Problem(atoms=_blowup_automata_atoms(), alphabet=("a", "b"))
    result = solver.check(problem)
    assert result.stats.get("budget_steps", 0) > 0
    assert any(key.startswith("steps.") for key in result.stats)


# ----------------------------------------------------------------------
# Deterministic budgets: step limits and injected clocks
# ----------------------------------------------------------------------
def test_step_limit_is_deterministic_and_machine_independent():
    problem = Problem(atoms=_blowup_automata_atoms(), alphabet=("a", "b"))
    results = [
        PositionSolver(SolverConfig(timeout=None, max_steps=2000)).check(problem)
        for _ in range(2)
    ]
    for result in results:
        assert result.status is Status.UNKNOWN
        assert isinstance(result.reason, UnknownReason)
        assert result.reason.kind is UnknownKind.STEP_LIMIT
    # same step budget -> same cut-off point (elapsed wall time may differ)
    first, second = (r.reason for r in results)
    assert (first.stage, first.steps) == (second.stage, second.steps)


def test_injected_clock_times_out_without_waiting():
    ticks = iter(range(10_000))

    def clock():
        return float(next(ticks))  # one "second" per consultation

    budget = Budget(5.0, clock=clock, check_interval=1)
    with pytest.raises(BudgetExceeded) as caught:
        while True:
            budget.checkpoint("synthetic")
    assert caught.value.reason.kind is UnknownKind.TIMEOUT
    assert caught.value.reason.stage == "synthetic"


def test_budget_is_stopwatch_compatible():
    # the baseline solvers still construct Stopwatch(timeout) — the alias
    # must keep the old surface
    from repro.solver.result import Stopwatch

    watch = Stopwatch(30.0)
    assert watch.deadline is not None
    assert not watch.expired()
    assert watch.elapsed() >= 0.0
    assert Stopwatch is Budget


# ----------------------------------------------------------------------
# Sessions survive running out of budget mid-check
# ----------------------------------------------------------------------
def _sat_atoms():
    return [
        RegexMembership("x", "(ab)*", positive=True),
        LengthConstraint(ge(str_len("x"), 4)),
    ]


def _unsat_atoms():
    # words of (ab)* never contain "aa"
    return [
        RegexMembership("x", "(ab)*", positive=True),
        RegexMembership("x", "(a|b)*aa(a|b)*", positive=True),
    ]


def test_session_usable_after_timeout_on_pushed_adversarial_frame():
    session = Session(config=SolverConfig(timeout=30.0), alphabet=("a", "b"))
    for atom in _sat_atoms():
        session.add(atom)
    session.push()
    for atom in _blowup_automata_atoms():
        session.add(atom)
    first = session.check(timeout=0.05)
    assert first.status in (Status.TIMEOUT, Status.UNKNOWN)
    assert isinstance(first.reason, UnknownReason)
    # pop the blowup frame: the same session must now decide the base
    # assertions exactly like a fresh solver would
    session.pop()
    assert session.check().status is Status.SAT
    fresh = Session(config=SolverConfig(timeout=30.0), alphabet=("a", "b"))
    for atom in _sat_atoms():
        fresh.add(atom)
    assert fresh.check().status is Status.SAT


def test_timeout_then_larger_budget_answers_correctly():
    # same session, same problem: tiny budget -> timeout; real budget -> the
    # right answer, identical to a fresh solver's
    for atoms, expected in ((_sat_atoms(), Status.SAT), (_unsat_atoms(), Status.UNSAT)):
        session = Session(config=SolverConfig(timeout=30.0), alphabet=("a", "b"))
        for atom in atoms:
            session.add(atom)
        first = session.check(budget=Budget(timeout=None, max_steps=5))
        assert first.status is Status.UNKNOWN
        assert first.reason.kind is UnknownKind.STEP_LIMIT
        second = session.check()
        assert second.status is expected
        fresh = Session(config=SolverConfig(timeout=30.0), alphabet=("a", "b"))
        for atom in atoms:
            fresh.add(atom)
        assert fresh.check().status is expected


def test_session_survives_keyboard_interrupt_mid_check():
    session = Session(config=SolverConfig(timeout=30.0), alphabet=("a", "b"))
    for atom in _unsat_atoms():
        session.add(atom)
    injector = FaultInjector([FaultSpec("*", at=3, action="interrupt")])
    with pytest.raises(KeyboardInterrupt):
        session.check(budget=Budget(30.0, hook=injector))
    # the interrupt unwound through every engine layer; the session must
    # still answer — and answer correctly
    result = session.check()
    assert result.status is Status.UNSAT


def test_injected_failure_mid_check_yields_internal_error_not_wrong_verdict():
    session = Session(config=SolverConfig(timeout=30.0), alphabet=("a", "b"))
    for atom in _sat_atoms():
        session.add(atom)
    injector = FaultInjector([FaultSpec("*", at=5, action="raise")])
    result = session.check(budget=Budget(30.0, hook=injector))
    assert result.status is Status.UNKNOWN
    assert isinstance(result.reason, UnknownReason)
    assert result.reason.kind is UnknownKind.INTERNAL_ERROR
    assert "InjectedFault" in result.reason.detail
    assert result.stats.get("internal_errors", 0) >= 1
    # recovery: the very next check decides the instance
    assert session.check().status is Status.SAT


def test_per_check_timeout_overrides_config():
    session = Session(config=SolverConfig(timeout=None), alphabet=("a", "b"))
    for atom in _blowup_automata_atoms():
        session.add(atom)
    t = 0.05
    started = time.monotonic()
    result = session.check(timeout=t)
    elapsed = time.monotonic() - started
    assert _within(elapsed, t)
    assert result.status in (Status.TIMEOUT, Status.UNKNOWN)
