"""Tests for the incremental session API (`repro.Session`).

The load-bearing properties:

* **differential** — a session driven through an interleaved push/pop
  chain gives the same verdict as a fresh one-shot ``PositionSolver`` on
  every prefix, and every ``sat`` model verifies against the problem;
* **incrementality** — repeated checks actually reuse the pipeline caches
  (components, branch solvers, asserted LIA parts);
* **unsat cores** — reported cores are jointly unsatisfiable and bystander
  assertions never appear in them.
"""

import pytest

from repro import PositionSolver, Session, SolverConfig, Status
from repro.lia import eq as lia_eq, ge, le
from repro.solver.result import StringModel
from repro.strings.ast import (
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    RegexMembership,
    WordEquation,
    lit,
    str_len,
    term,
)
from repro.strings.semantics import eval_problem


def _config():
    return SolverConfig(timeout=30.0)


def _check_against_oneshot(session, atoms, alphabet):
    """One differential step: session verdict == fresh one-shot verdict."""
    result = session.check()
    problem = Problem(atoms=list(atoms), alphabet=alphabet)
    oneshot = PositionSolver(_config()).check(problem)
    assert result.status == oneshot.status, (
        f"session={result.status} one-shot={oneshot.status} on {problem}"
    )
    if result.status is Status.SAT:
        model = session.model()
        assert model is not None
        assert eval_problem(problem, model.strings, model.integers)
    return result


# ----------------------------------------------------------------------
# Differential: interleaved push/pop chain vs one-shot on each prefix
# ----------------------------------------------------------------------
def test_session_differential_with_interleaved_push_pop():
    alphabet = tuple("ab")
    session = Session(config=_config(), alphabet=alphabet)
    active = []

    def add(atom):
        session.add(atom)
        active.append(atom)
        _check_against_oneshot(session, active, alphabet)

    add(RegexMembership("x", "(ab)*"))
    add(RegexMembership("y", "(a|b)*b"))
    session.push()
    frame_mark = len(active)
    add(WordEquation(term("x"), term("y"), positive=False))
    add(LengthConstraint(ge(str_len("x"), 2)))
    session.pop()
    del active[frame_mark:]
    _check_against_oneshot(session, active, alphabet)
    session.push()
    frame_mark = len(active)
    add(RegexMembership("z", "a*"))
    add(Contains(term("z"), term("x"), positive=False))
    add(LengthConstraint(ge(str_len("x"), 4)))
    session.pop()
    del active[frame_mark:]
    # An unsatisfiable tail: x and y over the same primitive word commute.
    session.push()
    frame_mark = len(active)
    add(RegexMembership("w", "(ab)*"))
    result = session.check()
    assert result.status is Status.SAT
    add(WordEquation(term("x", "w"), term("w", "x"), positive=False))
    assert session.check().status is Status.UNSAT
    session.pop()
    del active[frame_mark:]
    _check_against_oneshot(session, active, alphabet)


def test_session_chain_matches_oneshot_on_symbolic_execution_prefixes():
    alphabet = tuple("ab/")
    atoms = [
        RegexMembership("path", "(a|b|/)*"),
        RegexMembership("user", "(a|b)(a|b)*"),
        PrefixOf(term(lit("a/")), term("path"), positive=False),
        LengthConstraint(ge(str_len("path"), 3)),
        RegexMembership("doc", "(a|b)*"),
        WordEquation(term("user"), term("doc"), positive=False),
        LengthConstraint(lia_eq(str_len("user"), str_len("doc"))),
        LengthConstraint(le(str_len("user"), 6)),
        RegexMembership("seg", "(ab)*"),
        Contains(term(lit("bb")), term("seg"), positive=False),
        LengthConstraint(ge(str_len("seg"), 4)),
        LengthConstraint(ge(str_len("doc"), 2)),
    ]
    # The session checks after every added atom (the symbolic-execution
    # access pattern); the expensive one-shot cross-check runs at three
    # checkpoints — the full every-prefix comparison lives in the perf
    # harness (`session` workload of benchmarks/perf/bench_lia.py).
    checkpoints = {2, 5, len(atoms) - 1}
    session = Session(config=_config(), alphabet=alphabet)
    for index, atom in enumerate(atoms):
        session.add(atom)
        if index in checkpoints:
            _check_against_oneshot(session, atoms[: index + 1], alphabet)
        else:
            result = session.check()
            assert result.status is Status.SAT
            model = session.model()
            problem = Problem(atoms=atoms[: index + 1], alphabet=alphabet)
            assert eval_problem(problem, model.strings, model.integers)


# ----------------------------------------------------------------------
# Incremental reuse
# ----------------------------------------------------------------------
def test_session_actually_reuses_pipeline_state():
    session = Session(config=_config(), alphabet=tuple("ab"))
    session.add(RegexMembership("x", "(ab)*"))
    session.add(RegexMembership("y", "(a|b)*b"))
    session.add(WordEquation(term("x"), term("y"), positive=False))
    assert session.check().status is Status.SAT
    session.add(LengthConstraint(ge(str_len("x"), 2)))
    assert session.check().status is Status.SAT
    session.add(LengthConstraint(ge(str_len("y"), 3)))
    assert session.check().status is Status.SAT

    stats = session.statistics()
    assert stats["checks"] == 3
    assert stats["component_hits"] > 0, "component encodings were re-built"
    assert stats["branch_solver_reuses"] > 0, "branch LIA solvers were not pinned"
    assert stats["lia_parts_reused"] > 0, "LIA parts were re-asserted from scratch"
    assert stats["automata_cache_hits"] > 0


def test_component_grouping_is_a_partition_when_a_predicate_bridges_groups():
    # A predicate spanning three existing variable groups must merge them
    # into ONE component; the historical remove-during-iteration bug left
    # a variable split across two components (yielding inconsistent
    # witnesses).
    from repro.eqsolver import Branch
    from repro.solver.solver import IncrementalPipeline
    from repro.strings.normal_form import normalize

    problem = Problem(alphabet=tuple("ab"))
    for name, language in (("u", "a"), ("v", "aa"), ("w", "aaa")):
        problem.add(RegexMembership(name, language))
    problem.add(WordEquation(term("u"), term("v"), positive=False))  # group {u,v}
    problem.add(RegexMembership("s", "b*"))
    problem.add(WordEquation(term("w"), term("s"), positive=False))  # group {w,s}
    problem.add(RegexMembership("t", "b"))
    problem.add(WordEquation(term("t"), term("s"), positive=False))  # group {t,s} merges into {w,s,t}
    # the bridge: touches all remaining groups at once
    problem.add(WordEquation(term("u", "w"), term("t", "v"), positive=False))

    normal_form = normalize(problem)
    pipeline = IncrementalPipeline(SolverConfig())
    branch = Branch(dict(normal_form.automata))
    regular, contains, automata, error = pipeline._expand_predicates(normal_form, branch)
    assert not error
    components = pipeline._build_components(regular, contains, normal_form, branch, automata, 0)
    for index, first in enumerate(components):
        for second in components[index + 1 :]:
            assert not (first.variables & second.variables), (
                "variable split across components",
                [sorted(c.variables) for c in components],
            )
    assert any({"u", "v", "w", "s", "t"} <= c.variables for c in components)


def test_repeated_identical_checks_do_not_grow_solver_stacks():
    session = Session(config=_config(), alphabet=tuple("ab"))
    session.add(RegexMembership("x", "(ab)*"))
    session.add(LengthConstraint(ge(str_len("x"), 2)))
    for _ in range(20):
        assert session.check().status is Status.SAT
    depths = [
        len(state.levels)
        for state in session._pipeline._branch_solvers.values()
    ]
    assert depths and all(depth <= 2 for depth in depths), depths


def test_assumptions_do_not_persist():
    session = Session(config=_config(), alphabet=tuple("ab"))
    session.add(RegexMembership("x", "(ab)*"))
    contradiction = LengthConstraint(le(str_len("x"), -1))
    assert session.check(assumptions=[contradiction]).status is Status.UNSAT
    assert session.check().status is Status.SAT
    assert len(session) == 1


# ----------------------------------------------------------------------
# Assertion-stack bookkeeping
# ----------------------------------------------------------------------
def test_named_assertions_and_stack_errors():
    session = Session(alphabet=tuple("ab"))
    name = session.add(RegexMembership("x", "a*"), name="mx")
    assert name == "mx"
    with pytest.raises(ValueError):
        session.add(RegexMembership("x", "a+"), name="mx")
    auto = session.add(RegexMembership("y", "b*"))
    assert auto != "mx" and auto.startswith("a")
    assert [n for n, _ in session.assertions()] == ["mx", auto]
    with pytest.raises(IndexError):
        session.pop()
    session.push()
    assert session.depth == 1
    session.pop()
    assert session.depth == 0


# ----------------------------------------------------------------------
# Unsat cores
# ----------------------------------------------------------------------
def test_unsat_core_excludes_bystanders():
    session = Session(config=_config(), alphabet=tuple("ab"))
    session.add(RegexMembership("p", "a*"), name="bystander-p")
    session.add(RegexMembership("q", "(ab)*"), name="bystander-q")
    session.add(LengthConstraint(ge(str_len("p"), 1)), name="bystander-len")
    session.add(RegexMembership("x", "(ab)*"), name="mx")
    session.add(RegexMembership("y", "(ab)*"), name="my")
    session.add(WordEquation(term("x", "y"), term("y", "x"), positive=False), name="comm")
    result = session.check()
    assert result.status is Status.UNSAT
    core = session.unsat_core()
    assert set(core) == {"mx", "my", "comm"}
    for bystander in ("bystander-p", "bystander-q", "bystander-len"):
        assert bystander not in core


def test_unsat_core_over_length_constraints():
    session = Session(config=_config(), alphabet=tuple("ab"))
    session.add(RegexMembership("noise", "(a|b)*"), name="noise")
    session.add(WordEquation(term("noise"), term(lit("ab"))), name="noise-eq")
    session.add(RegexMembership("x", "(ab)*"), name="mx")
    session.add(LengthConstraint(ge(str_len("x"), 3)), name="lo")
    session.add(LengthConstraint(le(str_len("x"), 3)), name="hi")
    result = session.check()
    # (ab)* has even lengths only: |x| = 3 is impossible.
    assert result.status is Status.UNSAT
    core = session.unsat_core()
    assert "noise" not in core and "noise-eq" not in core
    assert set(core) == {"mx", "lo", "hi"}


def test_unsat_core_requires_unsat():
    session = Session(config=_config(), alphabet=tuple("ab"))
    session.add(RegexMembership("x", "a*"))
    assert session.check().status is Status.SAT
    with pytest.raises(RuntimeError):
        session.unsat_core()


def test_unsat_core_includes_assumptions():
    session = Session(config=_config(), alphabet=tuple("ab"))
    session.add(RegexMembership("x", "(ab)*"), name="mx")
    session.add(RegexMembership("pad", "b*"), name="pad")
    result = session.check(
        assumptions=[("odd", LengthConstraint(lia_eq(str_len("x"), 3)))]
    )
    assert result.status is Status.UNSAT
    core = session.unsat_core()
    assert "odd" in core and "pad" not in core


# ----------------------------------------------------------------------
# StringModel polish
# ----------------------------------------------------------------------
def test_string_model_mapping_interface():
    model = StringModel(strings={"x": "ab"}, integers={"n": -3})
    assert model["x"] == "ab"
    assert model["n"] == -3
    assert "x" in model and "n" in model and "z" not in model
    assert sorted(model) == ["n", "x"]
    assert len(model) == 2
    assert model.get("x") == "ab"
    assert model.get("n") == -3
    assert model.get("missing", "?") == "?"
    rendered = model.to_smtlib()
    assert '(define-fun x () String "ab")' in rendered
    assert "(define-fun n () Int (- 3))" in rendered


def test_string_model_quote_escaping():
    model = StringModel(strings={"s": 'a"b'})
    assert '"a""b"' in model.to_smtlib()
