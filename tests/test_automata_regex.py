"""Tests for the regex parser and compiler."""

import pytest

from repro.automata import RegexError, compile_regex, words_up_to


def accepts(pattern, word, alphabet="abc"):
    return compile_regex(pattern, alphabet).accepts(word)


def test_literal_word():
    assert accepts("abc", "abc")
    assert not accepts("abc", "ab")


def test_alternation():
    assert accepts("ab|c", "ab")
    assert accepts("ab|c", "c")
    assert not accepts("ab|c", "abc")


def test_star():
    assert accepts("(ab)*", "")
    assert accepts("(ab)*", "ababab")
    assert not accepts("(ab)*", "aba")


def test_plus_and_question():
    assert not accepts("a+", "")
    assert accepts("a+", "aaa")
    assert accepts("a?b", "b")
    assert accepts("a?b", "ab")
    assert not accepts("a?b", "aab")


def test_bounded_repetition():
    assert accepts("a{2,3}", "aa")
    assert accepts("a{2,3}", "aaa")
    assert not accepts("a{2,3}", "a")
    assert not accepts("a{2,3}", "aaaa")
    assert accepts("a{2}", "aa")
    assert accepts("a{2,}", "aaaaa")


def test_char_class_and_range():
    assert accepts("[ab]c", "ac")
    assert accepts("[ab]c", "bc")
    assert not accepts("[ab]c", "cc")
    assert accepts("[a-c]", "b")


def test_negated_class_uses_alphabet():
    assert accepts("[^a]", "b")
    assert accepts("[^a]", "c")
    assert not accepts("[^a]", "a")


def test_dot_matches_any_alphabet_symbol():
    assert accepts(".", "a")
    assert accepts(".", "c")
    assert not accepts(".", "ab")


def test_escaped_metacharacters():
    assert compile_regex(r"\*", alphabet="*a").accepts("*")
    assert compile_regex(r"a\+", alphabet="+a").accepts("a+")


def test_empty_pattern_is_epsilon():
    nfa = compile_regex("", alphabet="ab")
    assert nfa.accepts("")
    assert not nfa.accepts("a")


def test_flat_example_from_paper():
    # (ab)*c((ab)* + (ba)*) is flat; here written with | for union.
    nfa = compile_regex("(ab)*c((ab)*|(ba)*)", alphabet="abc")
    assert nfa.accepts("c")
    assert nfa.accepts("abcab")
    assert nfa.accepts("abcbaba")
    assert not nfa.accepts("abc" + "ab" + "ba")


def test_parse_errors():
    with pytest.raises(RegexError):
        compile_regex("(ab")
    with pytest.raises(RegexError):
        compile_regex("a)")
    with pytest.raises(RegexError):
        compile_regex("*a")
    with pytest.raises(RegexError):
        compile_regex("a{,}")
    with pytest.raises(RegexError):
        compile_regex("[ab")


def test_enumeration_of_regex_language():
    nfa = compile_regex("(a|b){1,2}", alphabet="ab")
    words = set(words_up_to(nfa, 2))
    assert words == {"a", "b", "aa", "ab", "ba", "bb"}


# ----------------------------------------------------------------------
# Intersection (&) and complement (~)
# ----------------------------------------------------------------------
def test_intersection_operator():
    nfa = compile_regex("(ab)*&(a|b){2,4}", alphabet="ab")
    assert nfa.accepts("ab")
    assert nfa.accepts("abab")
    assert not nfa.accepts("")  # too short for the right operand
    assert not nfa.accepts("ababab")  # too long
    assert not nfa.accepts("aa")  # not in (ab)*


def test_complement_operator():
    nfa = compile_regex("~(a*)", alphabet="ab")
    assert not nfa.accepts("")
    assert not nfa.accepts("aaa")
    assert nfa.accepts("b")
    assert nfa.accepts("ab")


def test_complement_binds_postfix_operators():
    # ~ applies to the following repetition unit *including* its postfix.
    nfa = compile_regex("~a*", alphabet="ab")
    assert not nfa.accepts("aa")
    assert nfa.accepts("ba")


def test_complement_of_complement_is_identity():
    nfa = compile_regex("~(~((ab)*))", alphabet="ab")
    assert nfa.accepts("")
    assert nfa.accepts("abab")
    assert not nfa.accepts("ba")


def test_intersection_precedence_between_union_and_concat():
    # | binds weaker than &: a|b&b = a | (b&b)
    nfa = compile_regex("a|b&b", alphabet="ab")
    assert nfa.accepts("a")
    assert nfa.accepts("b")
    nfa = compile_regex("a&b", alphabet="ab")
    assert not nfa.accepts("a")
    assert not nfa.accepts("b")


def test_escaped_intersection_and_complement_literals():
    nfa = compile_regex("\\&\\~", alphabet=("&", "~"))
    assert nfa.accepts("&~")
