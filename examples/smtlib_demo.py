"""SMT-LIB frontend demo: parse, print, and drive a session from a script.

Run with::

    PYTHONPATH=src python examples/smtlib_demo.py

The same script can be executed from the command line::

    PYTHONPATH=src python -m repro.smtlib benchmarks/smtlib/thefuck-like__thefuck-0.smt2
"""

from repro.smtlib import parse_problem, problem_to_smtlib, run_script
from repro.solver import SolverConfig

SCRIPT = """
(set-logic QF_SLIA)
(set-info :alphabet "ab/")
(declare-const path String)
(declare-const user String)

; every route is built from a, b and the separator
(assert (! (str.in_re path (re.* (re.union (str.to_re "a") (str.to_re "b") (str.to_re "/")))) :named mpath))
; user names alternate ab (a flat language, so the MBQI procedure decides
; the not-contains below exactly) and are non-empty
(assert (! (str.in_re user (re.* (re.++ (str.to_re "a") (str.to_re "b")))) :named muser))
(assert (! (>= (str.len user) 2) :named nonempty))
; note: SMT-LIB str.contains takes the haystack first
(assert (! (not (str.contains user "/")) :named nosep))

(push 1)
; an else-branch of a startswith() test, plus a length window
(assert (! (not (str.prefixof "a/" path)) :named notroute))
(assert (! (>= (str.len path) 3) :named minlen))
(check-sat)
(get-model)
(pop 1)

(push 1)
; an unsatisfiable narrowing: a separator-free user starting with "a/"
(assert (! (str.prefixof "a/" user) :named impossible))
(check-sat)
(get-unsat-core)
(pop 1)
(exit)
"""


#: the extended extraction functions: indexof names the separator
#: position, substr cuts the prefix — the shape symbolic executors emit
EXTRACTION_SCRIPT = """
(set-logic QF_SLIA)
(set-info :alphabet "ab/")
(declare-const path String)
(declare-const sep Int)
(declare-const dir String)
(assert (str.in_re path (re.* (re.union (str.to_re "a") (str.to_re "b") (str.to_re "/")))))
(assert (= sep (str.indexof path "/" 0)))
(assert (>= sep 1))
(assert (= dir (str.substr path 0 sep)))
(assert (>= (str.len dir) 2))
(check-sat)
(get-model)
"""


def main():
    print("== streaming the script into a session (python -m repro.smtlib) ==")
    for line in run_script(SCRIPT, config=SolverConfig(timeout=30.0)):
        print(line)

    print()
    print("== str.indexof / str.substr extraction chain ==")
    for line in run_script(EXTRACTION_SCRIPT, config=SolverConfig(timeout=30.0)):
        print(line)

    print()
    print("== the final assertion set as a round-tripped problem ==")
    problem = parse_problem(SCRIPT)
    print(problem_to_smtlib(problem, status="sat"), end="")


if __name__ == "__main__":
    main()
