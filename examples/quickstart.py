"""Quickstart: the incremental session API (and the one-shot variant).

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro import (
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    PositionSolver,
    RegexMembership,
    Session,
    SolverConfig,
    WordEquation,
    str_len,
    term,
    lit,
)
from repro.lia import eq as lia_eq, ge


def show(title, result, model=None):
    rendered = model.strings if model else ""
    print(f"{title:52} -> {result.status.value:7} {rendered}")


def main():
    # ------------------------------------------------------------------
    # The session API: one assertion stack, many related checks.  The
    # pipeline caches normalisation, decomposition, the tag-automaton
    # encodings and the per-branch LIA solvers across the whole chain.
    # ------------------------------------------------------------------
    session = Session(config=SolverConfig(timeout=30.0), alphabet=tuple("ab"))

    # 1. A disequality between two regular variables (§5.1).
    session.add(RegexMembership("x", "(ab)*"), name="mx")
    session.add(RegexMembership("y", "(a|b)*b"), name="my")
    session.add(WordEquation(term("x"), term("y"), positive=False), name="diseq")
    show("x in (ab)*, y in (a|b)*b, x != y", session.check(), session.model())

    # 2. Narrow the same query: a push/pop excursion adding a length bound.
    session.push()
    session.add(LengthConstraint(ge(str_len("x"), 4)), name="len4")
    show("  ... and |x| >= 4 (pushed)", session.check(), session.model())
    session.pop()  # the bound is gone, the cached pipeline state is not

    # 3. An unsatisfiable excursion: two fresh variables over the same
    #    primitive word always commute (§5.2) — and the unsat core names
    #    exactly the participating assertions (mx/my/diseq stay out).
    session.push()
    session.add(RegexMembership("v", "(ab)*"), name="mv")
    session.add(RegexMembership("w", "(ab)*"), name="mw")
    session.add(WordEquation(term("v", "w"), term("w", "v"), positive=False), name="comm")
    result = session.check()
    show("  ... and vw != wv with v,w in (ab)* (pushed)", result)
    if result.is_unsat:
        print(f"{'':52}    unsat core: {', '.join(session.unsat_core())}")
    session.pop()

    # 4. Checks under assumptions: one-call atoms that do not persist.
    assumption = LengthConstraint(ge(str_len("y"), 3))
    show("  ... assuming |y| >= 3 (not asserted)", session.check([assumption]),
         session.model())

    # 5. An impossible assumption: ``check(assumptions=…)`` cores name it.
    #    Assumption literals in the LIA layer blame exactly the integer
    #    atoms a refutation needed (final-conflict analysis), so the core
    #    arrives without deletion-test re-solves — |x| = 3 cannot hold for
    #    x in (ab)*, and the core names the assumption together with the
    #    assertions of x's encoding component.
    result = session.check([("odd-length", LengthConstraint(lia_eq(str_len("x"), 3)))])
    show("  ... assuming |x| = 3 (impossible over (ab)*)", result)
    if result.is_unsat:
        print(f"{'':52}    unsat core: {', '.join(session.unsat_core())}")
    stats = session.statistics()
    print(f"{'':52}    {stats['checks']} checks, "
          f"{stats['component_hits']} encoding reuses, "
          f"{stats['branch_solver_reuses']} LIA-stack reuses")

    # ------------------------------------------------------------------
    # The classic one-shot variant: build a Problem, check it once.
    # ------------------------------------------------------------------
    solver = PositionSolver(SolverConfig(timeout=30.0))

    problem = Problem(alphabet=tuple("ab"), name="prefix")
    problem.add(RegexMembership("greeting", "(a|b)*"))
    problem.add(WordEquation(term("greeting"), term(lit("ab"), "rest")))
    problem.add(PrefixOf(term(lit("b")), term("greeting"), positive=False))
    result = solver.check(problem)
    show('greeting = "ab" . rest, not prefixof("b", greeting)', result, result.model)

    problem = Problem(alphabet=tuple("ab"), name="notcontains")
    problem.add(RegexMembership("x", "a*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(Contains(term("x"), term("y"), positive=False))
    problem.add(LengthConstraint(ge(str_len("y"), 4)))
    result = solver.check(problem)
    show("x in a*, y in (ab)*, |y| >= 4, not contains(x, y)", result, result.model)


if __name__ == "__main__":
    main()
