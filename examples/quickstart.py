"""Quickstart: solve a few position constraints with the public API.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Contains,
    LengthConstraint,
    PrefixOf,
    Problem,
    PositionSolver,
    RegexMembership,
    SolverConfig,
    WordEquation,
    str_len,
    term,
    lit,
)
from repro.lia import ge


def show(title, result):
    model = result.model.strings if result.model else None
    print(f"{title:45} -> {result.status.value:7} {model or ''}")


def main():
    solver = PositionSolver(SolverConfig(timeout=30.0))

    # 1. A disequality between two regular variables (§5.1).
    problem = Problem(alphabet=tuple("ab"), name="diseq")
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(a|b)*b"))
    problem.add(WordEquation(term("x"), term("y"), positive=False))  # x != y
    show("x in (ab)*, y in (a|b)*b, x != y", solver.check(problem))

    # 2. An unsatisfiable disequality: both sides always commute (§5.2).
    problem = Problem(alphabet=tuple("ab"), name="commuting")
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(WordEquation(term("x", "y"), term("y", "x"), positive=False))
    show("x,y in (ab)*, xy != yx", solver.check(problem))

    # 3. A negated prefix check plus an equation (the frontend removes the
    #    equation by noodlification before the position procedure runs).
    problem = Problem(alphabet=tuple("ab"), name="prefix")
    problem.add(RegexMembership("greeting", "(a|b)*"))
    problem.add(WordEquation(term("greeting"), term(lit("ab"), "rest")))
    problem.add(PrefixOf(term(lit("b")), term("greeting"), positive=False))
    show('greeting = "ab" . rest, not prefixof("b", greeting)', solver.check(problem))

    # 4. ¬contains over flat languages (§6.4) with a length constraint.
    problem = Problem(alphabet=tuple("ab"), name="notcontains")
    problem.add(RegexMembership("x", "a*"))
    problem.add(RegexMembership("y", "(ab)*"))
    problem.add(Contains(term("x"), term("y"), positive=False))  # x does not occur in y
    problem.add(LengthConstraint(ge(str_len("y"), 4)))
    show("x in a*, y in (ab)*, |y| >= 4, not contains(x, y)", solver.check(problem))


if __name__ == "__main__":
    main()
