"""The position-hard workload: primitiveness-style constraints (§8, footnote 10).

These are the instances "unsolvable by state-of-the-art solvers" that motivate
the ¬contains procedure of §6.4: single disequalities or ¬contains predicates
over concatenations of variables with flat languages.  The example also shows
the NP-hardness reduction of Lemma 7.2 in action (3-SAT as disequalities).

Run with::

    python examples/primitive_words.py
"""

from repro import Contains, Problem, PositionSolver, RegexMembership, SolverConfig, WordEquation, term
from repro.benchgen import sat_reductions


def show(title, result):
    model = result.model.strings if result.model else ""
    print(f"{title:48} -> {result.status.value:7} {model}")


def main():
    solver = PositionSolver(SolverConfig(timeout=60.0))

    # Primitiveness-flavoured ¬contains: x never occurs inside x·x is
    # impossible (x occurs at offset 0), so the constraint is unsatisfiable.
    problem = Problem(alphabet=tuple("abc"), name="self-containment")
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(Contains(term("x"), term("x", "x"), positive=False))
    show("not contains(x, x.x), x in (ab)*", solver.check(problem))

    # A satisfiable ¬contains that needs alignment reasoning: the needle x·x
    # must avoid every offset of the haystack y.
    problem = Problem(alphabet=tuple("abc"), name="avoid")
    problem.add(RegexMembership("x", "(ab)*"))
    problem.add(RegexMembership("y", "(ba)*"))
    problem.add(Contains(term("x", "x"), term("y"), positive=False))
    show("not contains(x.x, y), x in (ab)*, y in (ba)*", solver.check(problem))

    # Commuting-power disequality: unsatisfiable, only provable with position
    # reasoning (guessing assignments can never conclude anything).
    problem = Problem(alphabet=tuple("abc"), name="commuting")
    problem.add(RegexMembership("x", "(abc)*"))
    problem.add(RegexMembership("y", "(abc)*"))
    problem.add(WordEquation(term("x", "y"), term("y", "x"), positive=False))
    show("x,y in (abc)*, xy != yx", solver.check(problem))

    # Lemma 7.2: 3-SAT reduced to a system of disequalities.  The clauses are
    # chosen over disjoint variables so each becomes its own (cheap) component;
    # clauses sharing variables exercise the A^III construction, which the
    # pure-Python LIA backend solves much more slowly (see EXPERIMENTS.md).
    clauses = [(1, -2, 2), (3, 4, -4)]
    problem = sat_reductions.three_sat_to_disequalities(4, clauses)
    result = solver.check(problem)
    show("3-SAT via disequalities (Lemma 7.2)", result)
    ground_truth = sat_reductions.sat_brute_force(4, clauses)
    print(f"{'':48}    propositional ground truth: {'sat' if ground_truth else 'unsat'}")


if __name__ == "__main__":
    main()
