"""Solve symbolic-execution style path conditions (the §8 workload shape).

The example builds a handful of constraints of the kind produced by symbolic
execution of string-manipulating programs — else-branches of equality tests,
``startswith``/``endswith`` probes, ``str.at`` inspections — and solves them
with the position-aware solver and the two baselines, printing a small
comparison table.

Run with::

    python examples/symbolic_execution_paths.py
"""

import time

from repro import EagerReductionSolver, EnumerativeSolver, PositionSolver, SolverConfig
from repro.benchgen import symbolic_execution


def main():
    instances = (
        list(symbolic_execution.biopython_like(3, seed=42))
        + list(symbolic_execution.django_like(3, seed=43))
        + list(symbolic_execution.thefuck_like(3, seed=44))
    )
    solvers = {
        "repro-pos": lambda: PositionSolver(SolverConfig(timeout=15.0)),
        "eager-reduction": lambda: EagerReductionSolver(SolverConfig(timeout=15.0)),
        "enumerative": lambda: EnumerativeSolver(SolverConfig(timeout=15.0)),
    }

    header = f"{'instance':<18}" + "".join(f"{name:>22}" for name in solvers)
    print(header)
    print("-" * len(header))
    for name, problem, expected in instances:
        row = f"{name:<18}"
        for solver_name, factory in solvers.items():
            start = time.monotonic()
            result = factory().check(problem)
            elapsed = time.monotonic() - start
            row += f"{result.status.value + f' ({elapsed:.1f}s)':>22}"
        if expected:
            row += f"   [expected: {expected}]"
        print(row)


if __name__ == "__main__":
    main()
